#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vadalog {
namespace {

// Nesting cap: the protocol never nests past ~4 levels; 64 keeps hostile
// "[[[[..." lines from recursing the parser off the stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> Run() {
    SkipSpace();
    std::optional<JsonValue> value = ParseValue(0);
    if (!value.has_value()) return std::nullopt;
    SkipSpace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after JSON value");
      return std::nullopt;
    }
    return value;
  }

 private:
  void Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      Fail("nesting too deep");
      return std::nullopt;
    }
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        std::optional<std::string> s = ParseString();
        if (!s.has_value()) return std::nullopt;
        return JsonValue::String(std::move(*s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return JsonValue::Bool(true);
        }
        break;
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return JsonValue::Bool(false);
        }
        break;
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return JsonValue();
        }
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        break;
    }
    Fail("unexpected character");
    return std::nullopt;
  }

  std::optional<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return object;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        Fail("expected string key");
        return std::nullopt;
      }
      std::optional<std::string> key = ParseString();
      if (!key.has_value()) return std::nullopt;
      SkipSpace();
      if (!Consume(':')) {
        Fail("expected ':'");
        return std::nullopt;
      }
      SkipSpace();
      std::optional<JsonValue> value = ParseValue(depth + 1);
      if (!value.has_value()) return std::nullopt;
      object.Set(std::move(*key), std::move(*value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      Fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return array;
    while (true) {
      SkipSpace();
      std::optional<JsonValue> value = ParseValue(depth + 1);
      if (!value.has_value()) return std::nullopt;
      array.Append(std::move(*value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      Fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty() ||
        !std::isfinite(value)) {
      Fail("malformed number");
      return std::nullopt;
    }
    return JsonValue::Number(value);
  }

  /// Appends `code` (a Unicode scalar value) to `out` as UTF-8.
  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::optional<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      Fail("truncated \\u escape");
      return std::nullopt;
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        Fail("malformed \\u escape");
        return std::nullopt;
      }
    }
    pos_ += 4;
    return value;
  }

  std::optional<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
        return std::nullopt;
      }
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) {
        Fail("truncated escape");
        return std::nullopt;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::optional<uint32_t> unit = ParseHex4();
          if (!unit.has_value()) return std::nullopt;
          uint32_t code = *unit;
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              Fail("unpaired surrogate");
              return std::nullopt;
            }
            pos_ += 2;
            std::optional<uint32_t> low = ParseHex4();
            if (!low.has_value()) return std::nullopt;
            if (*low < 0xDC00 || *low > 0xDFFF) {
              Fail("unpaired surrogate");
              return std::nullopt;
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (*low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            Fail("unpaired surrogate");
            return std::nullopt;
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          Fail("unknown escape");
          return std::nullopt;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string* error_;
};

void DumpString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    unsigned char byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", byte);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpValue(const JsonValue& value, std::string* out) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      *out += "null";
      return;
    case JsonValue::Type::kBool:
      *out += value.AsBool() ? "true" : "false";
      return;
    case JsonValue::Type::kNumber: {
      double n = value.AsNumber();
      // Integral doubles print without a fraction (budgets, counters —
      // the protocol's common case); others with enough digits to round-
      // trip.
      if (std::isfinite(n) && n == std::floor(n) && std::fabs(n) < 9e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", n);
        *out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", n);
        *out += buf;
      }
      return;
    }
    case JsonValue::Type::kString:
      DumpString(value.AsString(), out);
      return;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : value.Items()) {
        if (!first) out->push_back(',');
        first = false;
        DumpValue(item, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.Members()) {
        if (!first) out->push_back(',');
        first = false;
        DumpString(key, out);
        out->push_back(':');
        DumpValue(member, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::Append(JsonValue v) { items_.push_back(std::move(v)); }

void JsonValue::Set(std::string key, JsonValue v) {
  members_.emplace_back(std::move(key), std::move(v));
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->is_string()) return fallback;
  return value->AsString();
}

uint64_t JsonValue::GetUint(std::string_view key, uint64_t fallback) const {
  uint64_t out = 0;
  return TryGetUint(key, &out) == UintField::kValid ? out : fallback;
}

JsonValue::UintField JsonValue::TryGetUint(std::string_view key,
                                           uint64_t* out) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) return UintField::kAbsent;
  if (!value->is_number()) return UintField::kInvalid;
  double n = value->AsNumber();
  // `!(n >= 0)` also catches NaN; the 9e15 ceiling keeps the value in
  // the exact double-integer range and makes the uint64_t cast defined.
  if (!std::isfinite(n) || !(n >= 0) || n != std::floor(n) || n > 9e15) {
    return UintField::kInvalid;
  }
  *out = static_cast<uint64_t>(n);
  return UintField::kValid;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->is_bool()) return fallback;
  return value->AsBool();
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpValue(*this, &out);
  return out;
}

std::optional<JsonValue> JsonValue::Parse(std::string_view text,
                                          std::string* error) {
  if (error != nullptr) error->clear();
  Parser parser(text, error);
  std::optional<JsonValue> value = parser.Run();
  if (!value.has_value() && error != nullptr && error->empty()) {
    *error = "malformed JSON";
  }
  return value;
}

}  // namespace vadalog
