#include "server/prometheus.h"

#include <cstdio>
#include <optional>

namespace vadalog {
namespace prometheus {

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

/// Renders one label set as {k1="v1",k2="v2"}; empty string when there
/// are no labels. `extra` appends one more pair (used for `le`).
std::string RenderLabels(const JsonValue* labels, const std::string& extra) {
  std::string body;
  if (labels != nullptr && labels->is_object()) {
    for (const auto& [key, value] : labels->Members()) {
      if (!body.empty()) body += ",";
      body += key + "=\"" +
              EscapeLabelValue(value.is_string() ? value.AsString()
                                                 : value.Dump()) +
              "\"";
    }
  }
  if (!extra.empty()) {
    if (!body.empty()) body += ",";
    body += extra;
  }
  if (body.empty()) return "";
  return "{" + body + "}";
}

/// Prints a sample value the way Prometheus expects: integral values
/// without a fraction, anything else as shortest double.
std::string RenderNumber(double value) {
  if (value == static_cast<double>(static_cast<long long>(value))) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

void AppendSample(std::string* out, const std::string& name,
                  const std::string& suffix, const JsonValue* labels,
                  const std::string& extra, double value) {
  *out += name;
  *out += suffix;
  *out += RenderLabels(labels, extra);
  *out += ' ';
  *out += RenderNumber(value);
  *out += '\n';
}

}  // namespace

bool RenderMetricsText(const JsonValue& metrics, std::string* out) {
  if (!metrics.is_array()) return false;
  std::string previous_name;
  for (const JsonValue& metric : metrics.Items()) {
    std::string name = metric.GetString("name");
    std::string type = metric.GetString("type");
    if (name.empty()) return false;
    if (name != previous_name) {
      std::string help = metric.GetString("help");
      if (!help.empty()) {
        *out += "# HELP " + name + " " + help + "\n";
      }
      *out += "# TYPE " + name + " " + type + "\n";
      previous_name = name;
    }
    const JsonValue* labels = metric.Find("labels");
    if (type == "histogram") {
      const JsonValue* bounds = metric.Find("bounds");
      const JsonValue* buckets = metric.Find("buckets");
      if (bounds == nullptr || buckets == nullptr ||
          !bounds->is_array() || !buckets->is_array() ||
          buckets->Items().size() != bounds->Items().size() + 1) {
        return false;
      }
      for (size_t i = 0; i < bounds->Items().size(); ++i) {
        AppendSample(out, name, "_bucket", labels,
                     "le=\"" + RenderNumber(bounds->Items()[i].AsNumber()) +
                         "\"",
                     buckets->Items()[i].AsNumber());
      }
      AppendSample(out, name, "_bucket", labels, "le=\"+Inf\"",
                   buckets->Items().back().AsNumber());
      const JsonValue* sum = metric.Find("sum");
      const JsonValue* count = metric.Find("count");
      AppendSample(out, name, "_sum", labels, "",
                   sum != nullptr ? sum->AsNumber() : 0);
      AppendSample(out, name, "_count", labels, "",
                   count != nullptr ? count->AsNumber() : 0);
    } else {
      const JsonValue* value = metric.Find("value");
      AppendSample(out, name, "", labels, "",
                   value != nullptr ? value->AsNumber() : 0);
    }
  }
  return true;
}

bool RenderDocumentText(const std::string& text, std::string* out,
                        std::string* error) {
  std::string parse_error;
  std::optional<JsonValue> parsed = JsonValue::Parse(text, &parse_error);
  if (!parsed.has_value()) {
    if (error != nullptr) *error = parse_error;
    return false;
  }
  const JsonValue* metrics =
      parsed->is_array() ? &*parsed : parsed->Find("metrics");
  std::string body;
  if (metrics == nullptr || !RenderMetricsText(*metrics, &body)) {
    if (error != nullptr) *error = "not a METRICS snapshot";
    return false;
  }
  *out += body;
  return true;
}

}  // namespace prometheus
}  // namespace vadalog
