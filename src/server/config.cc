#include "server/config.h"

#include <cstdlib>

#include "obs/log.h"

namespace vadalog {

namespace {

bool ParseUint(std::string_view value, uint64_t* out) {
  if (value.empty()) return false;
  uint64_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (parsed > (UINT64_MAX - digit) / 10) return false;  // overflow
    parsed = parsed * 10 + digit;
  }
  *out = parsed;
  return true;
}

bool ParseBool(std::string_view value, bool* out) {
  if (value == "true" || value == "1" || value == "on") {
    *out = true;
    return true;
  }
  if (value == "false" || value == "0" || value == "off") {
    *out = false;
    return true;
  }
  return false;
}

bool FailSet(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

struct KeyDoc {
  const char* key;
  const char* help;
};

constexpr KeyDoc kKeyDocs[] = {
    {"tcp", "listen on TCP loopback (true/false)"},
    {"tcp_port", "TCP port, 0 = ephemeral (0..65535)"},
    {"unix", "Unix-domain socket path, empty = disabled"},
    {"workers", "worker pool size (>= 1); thread budget = 1 loop + workers"},
    {"search_threads", "default parallel-search threads per query (>= 1)"},
    {"cache_bytes", "per-session proof-cache eviction threshold"},
    {"max_inflight", "global in-flight request cap (>= 1)"},
    {"max_inflight_per_session", "per-session in-flight cap (>= 1)"},
    {"max_connections", "open client connection cap (>= 1)"},
    {"max_line_bytes", "request line length cap (>= 1024)"},
    {"max_outbuf_bytes", "per-connection unsent response cap (>= 4096)"},
    {"recv_timeout_ms", "obsolete under the event loop; accepted, ignored"},
    {"encodings", "comma-separated negotiable encodings (json,binary)"},
    {"poller", "event backend: epoll (Linux) or poll (portable)"},
    {"log_level", "stderr log level: debug, info, warn, error, off"},
    {"slow_query_ms", "slow-query log threshold in ms, 0 = disabled"},
    {"slow_query_log", "slow-query sink: file path, or stderr (default)"},
};

}  // namespace

bool ServerConfig::Set(std::string_view key, std::string_view value,
                       std::string* error) {
  auto bad_value = [&](const char* expected) {
    return FailSet(error, "config " + std::string(key) + "=" +
                              std::string(value) + ": expected " + expected);
  };
  uint64_t number = 0;
  if (key == "tcp") {
    if (!ParseBool(value, &tcp)) return bad_value("true/false");
  } else if (key == "tcp_port") {
    if (!ParseUint(value, &number) || number > 65535) {
      return bad_value("a port in 0..65535");
    }
    tcp_port = static_cast<uint16_t>(number);
  } else if (key == "unix") {
    unix_path = std::string(value);
  } else if (key == "workers") {
    if (!ParseUint(value, &number) || number == 0 || number > 1024) {
      return bad_value("a thread count in 1..1024");
    }
    workers = static_cast<size_t>(number);
  } else if (key == "search_threads") {
    if (!ParseUint(value, &number) || number == 0 || number > 64) {
      return bad_value("a thread count in 1..64");
    }
    search_threads = static_cast<uint32_t>(number);
  } else if (key == "cache_bytes") {
    if (!ParseUint(value, &number)) return bad_value("a byte count");
    cache_byte_limit = static_cast<size_t>(number);
  } else if (key == "max_inflight") {
    if (!ParseUint(value, &number) || number == 0) {
      return bad_value("a positive request count");
    }
    max_inflight = static_cast<size_t>(number);
  } else if (key == "max_inflight_per_session") {
    if (!ParseUint(value, &number) || number == 0) {
      return bad_value("a positive request count");
    }
    max_inflight_per_session = static_cast<size_t>(number);
  } else if (key == "max_connections") {
    if (!ParseUint(value, &number) || number == 0) {
      return bad_value("a positive connection count");
    }
    max_connections = static_cast<size_t>(number);
  } else if (key == "max_line_bytes") {
    if (!ParseUint(value, &number) || number < 1024) {
      return bad_value("a byte count >= 1024");
    }
    max_line_bytes = static_cast<size_t>(number);
  } else if (key == "max_outbuf_bytes") {
    if (!ParseUint(value, &number) || number < 4096) {
      return bad_value("a byte count >= 4096");
    }
    max_outbuf_bytes = static_cast<size_t>(number);
  } else if (key == "recv_timeout_ms") {
    if (!ParseUint(value, &number) || number > UINT32_MAX) {
      return bad_value("a millisecond count");
    }
    recv_timeout_ms = static_cast<uint32_t>(number);
  } else if (key == "encodings") {
    std::vector<protocol::Encoding> parsed;
    size_t start = 0;
    while (start <= value.size()) {
      size_t comma = value.find(',', start);
      std::string_view name = value.substr(
          start, comma == std::string_view::npos ? comma : comma - start);
      std::optional<protocol::Encoding> encoding =
          protocol::EncodingFromName(name);
      if (!encoding.has_value()) {
        return bad_value("a comma-separated subset of json,binary");
      }
      parsed.push_back(*encoding);
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
    if (parsed.empty()) {
      return bad_value("a comma-separated subset of json,binary");
    }
    encodings = std::move(parsed);
  } else if (key == "poller") {
    if (value != "epoll" && value != "poll") {
      return bad_value("epoll or poll");
    }
    poller = std::string(value);
  } else if (key == "log_level") {
    obs::LogLevel level = obs::LogLevel::kInfo;
    if (!obs::LogLevelFromName(value, &level)) {
      return bad_value("one of debug, info, warn, error, off");
    }
    log_level = std::string(value);
  } else if (key == "slow_query_ms") {
    if (!ParseUint(value, &number)) return bad_value("a millisecond count");
    slow_query_ms = number;
  } else if (key == "slow_query_log") {
    slow_query_log = std::string(value);
  } else {
    return FailSet(error, "unknown config key \"" + std::string(key) +
                              "\" (try --config list)");
  }
  return true;
}

std::string ServerConfig::Validate() const {
  if (!tcp && unix_path.empty()) {
    return "no listening endpoint configured (tcp=false and unix empty)";
  }
  bool has_json = false;
  for (protocol::Encoding encoding : encodings) {
    if (encoding == protocol::Encoding::kJson) has_json = true;
  }
  if (!has_json) {
    // JSON is the pre-negotiation default every connection starts in;
    // an allowlist without it would advertise a contract the server
    // cannot honor for clients that never HELLO.
    return "encodings must include json (the pre-negotiation default)";
  }
  if (max_inflight_per_session > max_inflight) {
    return "max_inflight_per_session exceeds max_inflight";
  }
  obs::LogLevel level = obs::LogLevel::kInfo;
  if (!obs::LogLevelFromName(log_level, &level)) {
    return "log_level must be one of debug, info, warn, error, off";
  }
  return "";
}

std::string ServerConfig::DescribeKeys() {
  std::string out;
  for (const KeyDoc& doc : kKeyDocs) {
    out += doc.key;
    out += "\t";
    out += doc.help;
    out += "\n";
  }
  return out;
}

}  // namespace vadalog
