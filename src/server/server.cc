#include "server/server.h"

#ifndef _WIN32
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace vadalog {

#ifdef _WIN32

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      pool_(std::make_unique<WorkerPool>(config_.workers)),
      registry_(SessionOptions{}) {}
Server::~Server() = default;
bool Server::Start(std::string* error) {
  if (error != nullptr) *error = "vadalogd requires POSIX sockets";
  return false;
}
void Server::Stop() {}
Server::Stats Server::stats() const { return {}; }
void Server::EventLoop() {}
void Server::AcceptReady(int) {}
void Server::ReadReady(const std::shared_ptr<Connection>&) {}
void Server::WriteReady(const std::shared_ptr<Connection>&) {}
void Server::FrameAndDispatch(const std::shared_ptr<Connection>&) {}
void Server::DispatchPending(const std::shared_ptr<Connection>&) {}
void Server::ServeLine(const std::shared_ptr<Connection>&,
                       const std::string&) {}
void Server::QueueResponse(const std::shared_ptr<Connection>&, std::string) {}
void Server::FlushOut(const std::shared_ptr<Connection>&) {}
void Server::UpdateInterest(const std::shared_ptr<Connection>&) {}
void Server::CloseConnection(int) {}
void Server::DrainCompletions() {}
bool Server::EvictIdleConnection() { return false; }
bool Server::AnyExecuting() const { return false; }
void Server::ReleaseAdmission(const std::string&) {}

#else  // POSIX

namespace server_internal {

RecvStatus RecvChunk(int fd, char* buffer, size_t capacity,
                     size_t* received) {
  *received = 0;
  while (true) {
    ssize_t n = ::recv(fd, buffer, capacity, 0);
    if (n > 0) {
      *received = static_cast<size_t>(n);
      return RecvStatus::kData;
    }
    if (n == 0) return RecvStatus::kClosed;  // orderly peer shutdown
    if (errno == EINTR) continue;            // signal: just re-issue
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // On the loop's non-blocking sockets this means "drained for
      // now" — NOT a closed peer: the loop parks the connection until
      // the next readiness event. Conflating this with n <= 0 used to
      // drop idle connections mid-request.
      return RecvStatus::kRetry;
    }
    return RecvStatus::kError;
  }
}

}  // namespace server_internal

namespace {

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

JsonValue BusyResponse(const JsonValue& id, const char* scope) {
  JsonValue response = protocol::ErrorResponse(
      protocol::Error{"EBUSY",
                      std::string("admission control: too many in-flight "
                                  "requests (") +
                          scope + "); retry"},
      id);
  response.Set("retry", JsonValue::Bool(true));
  return response;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      pool_(std::make_unique<WorkerPool>(
          config_.workers == 0 ? 1 : config_.workers)),
      registry_([this] {
        SessionOptions session;
        session.cache_byte_limit = config_.cache_byte_limit;
        session.search_threads = config_.search_threads;
        session.pool = pool_.get();
        session.metrics = &metrics_;
        session.slow_log = &slow_log_;
        session.slow_query_micros = config_.slow_query_ms * 1000;
        return session;
      }()) {
  counters_.connections = metrics_.GetCounter(
      "vadalogd_connections_total", {}, "client connections accepted");
  counters_.connections_open = metrics_.GetGauge(
      "vadalogd_connections_open", {}, "client connections currently open");
  counters_.requests = metrics_.GetCounter(
      "vadalogd_requests_total", {},
      "request lines served (including inline and rejected ones)");
  counters_.rejected_global = metrics_.GetCounter(
      "vadalogd_rejected_total", {{"scope", "global"}},
      "requests rejected EBUSY by the global in-flight cap");
  counters_.rejected_session = metrics_.GetCounter(
      "vadalogd_rejected_total", {{"scope", "session"}},
      "requests rejected EBUSY by the per-session in-flight cap");
  counters_.idle_evicted = metrics_.GetCounter(
      "vadalogd_idle_evicted_total", {},
      "idle connections evicted to free a descriptor under EMFILE");
  counters_.emfile_shed = metrics_.GetCounter(
      "vadalogd_emfile_shed_total", {},
      "pending connections shed through the reserve descriptor");
  counters_.connlimit_closed = metrics_.GetCounter(
      "vadalogd_connlimit_closed_total", {},
      "arrivals closed at the max_connections cap");
  counters_.overflow_closed = metrics_.GetCounter(
      "vadalogd_overflow_closed_total", {},
      "connections dropped for an out-buffer past max_outbuf_bytes");
  counters_.inflight = metrics_.GetGauge(
      "vadalogd_inflight", {},
      "requests admitted and not yet completed (queued + executing)");
  counters_.loop_iterations = metrics_.GetCounter(
      "vadalogd_loop_iterations_total", {}, "event-loop iterations");
  counters_.loop_iteration_us = metrics_.GetHistogram(
      "vadalogd_loop_iteration_us", {},
      "time handling one event-loop batch (excluding the poll wait), us");
  counters_.wakeups = metrics_.GetCounter(
      "vadalogd_wakeups_total", {},
      "self-pipe wakeups delivered to the event loop");
  counters_.queue_wait_us = metrics_.GetHistogram(
      "vadalogd_queue_wait_us", {},
      "time admitted requests waited in the worker-pool queue, us");
  pool_->set_queue_depth_gauge(metrics_.GetGauge(
      "vadalogd_queue_depth", {}, "worker-pool queue depth"));
}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message + ": " + std::strerror(errno);
    for (int fd : listen_fds_) ::close(fd);
    listen_fds_.clear();
    if (wakeup_read_ >= 0) ::close(wakeup_read_);
    if (wakeup_write_ >= 0) ::close(wakeup_write_);
    wakeup_read_ = wakeup_write_ = -1;
    poller_.reset();
    return false;
  };

  std::string config_error = config_.Validate();
  if (!config_error.empty()) {
    if (error != nullptr) *error = "invalid config: " + config_error;
    return false;
  }

  obs::LogLevel level = obs::LogLevel::kInfo;
  obs::LogLevelFromName(config_.log_level, &level);  // validated above
  obs::SetLogLevel(level);
  if (config_.slow_query_ms > 0) {
    std::string open_error;
    if (!slow_log_.Open(config_.slow_query_log, &open_error)) {
      if (error != nullptr) *error = "slow_query_log: " + open_error;
      return false;
    }
  }

  if (config_.tcp) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return fail("socket(tcp)");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(config_.tcp_port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 128) != 0) {
      int saved = errno;
      ::close(fd);
      errno = saved;
      return fail("bind/listen(tcp)");
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_tcp_port_ = ntohs(addr.sin_port);
    listen_fds_.push_back(fd);
  }

  if (!config_.unix_path.empty()) {
    sockaddr_un addr{};
    if (config_.unix_path.size() >= sizeof addr.sun_path) {
      if (error != nullptr) *error = "unix socket path too long";
      for (int fd : listen_fds_) ::close(fd);
      listen_fds_.clear();
      return false;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return fail("socket(unix)");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(config_.unix_path.c_str());  // stale socket from a crash
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 128) != 0) {
      int saved = errno;
      ::close(fd);
      errno = saved;
      return fail("bind/listen(unix)");
    }
    listen_fds_.push_back(fd);
  }

  if (listen_fds_.empty()) {
    if (error != nullptr) *error = "no listening endpoint configured";
    return false;
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return fail("pipe(wakeup)");
  wakeup_read_ = pipe_fds[0];
  wakeup_write_ = pipe_fds[1];
  for (int fd : listen_fds_) {
    if (!SetNonBlocking(fd)) return fail("fcntl(listen)");
  }
  if (!SetNonBlocking(wakeup_read_) || !SetNonBlocking(wakeup_write_)) {
    return fail("fcntl(wakeup)");
  }
  // No loop thread exists until the launch below, so the starting
  // thread owns the loop role for this setup phase (the claim the
  // ASSERT states; nothing else can hold it yet).
  loop_role_.AssertHeld();
  // Held open purely so AcceptReady can close it to survive EMFILE with
  // nothing evictable; failure to open it is not fatal (the shed path
  // just degrades away).
  reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

  poller_ = std::make_unique<Poller>(config_.poller == "poll"
                                         ? Poller::Backend::kPoll
                                         : Poller::Backend::kEpoll);
  if (!poller_->ok()) return fail("poller init");
  for (int fd : listen_fds_) poller_->Add(fd, /*read=*/true, /*write=*/false);
  poller_->Add(wakeup_read_, /*read=*/true, /*write=*/false);

  running_.store(true);
  loop_thread_ = std::thread([this] { EventLoop(); });
  return true;
}

void Server::EventLoop() {
  // Claim the loop role for the thread's whole lifetime: every helper
  // this loop calls REQUIRES(loop_role_), and Stop joins this thread
  // before touching anything the role guards.
  base::ThreadRoleGuard loop(&loop_role_);
  std::vector<Poller::Event> events;
  bool draining = false;
  bool flush_deadline_set = false;
  std::chrono::steady_clock::time_point flush_deadline;

  while (true) {
    if (!running_.load() && !draining) {
      draining = true;
      // Stop accepting; stop reading; requests not yet dispatched are
      // dropped (the client never got a response promise for them —
      // exactly the old behavior where shutdown cut the read side).
      for (int fd : listen_fds_) {
        poller_->Del(fd);
        ::close(fd);
      }
      listen_fds_.clear();
      for (auto& [fd, connection] : connections_) {
        connection->pending_lines.clear();
        connection->closing = true;
        UpdateInterest(connection);
      }
    }

    if (draining) {
      if (inflight_ > 0) {
        // Executing requests always finish and get flushed; the bounded
        // timer below only covers the final out-buffer drain.
        flush_deadline_set = false;
      } else {
        bool any_unsent = false;
        for (auto& [fd, connection] : connections_) {
          if (connection->out_sent < connection->out.size()) {
            any_unsent = true;
            break;
          }
        }
        if (!any_unsent) break;
        auto now = std::chrono::steady_clock::now();
        if (!flush_deadline_set) {
          flush_deadline_set = true;
          flush_deadline = now + std::chrono::seconds(2);
        } else if (now >= flush_deadline) {
          break;  // a stalled reader does not hold shutdown hostage
        }
      }
    }

    int wait_ms = draining ? 20 : -1;
    int ready = poller_->Wait(&events, wait_ms);
    if (ready < 0) break;  // unrecoverable backend error
    // Iteration latency covers the handling of this batch only — the
    // (unbounded, idle) poll wait above is deliberately excluded.
    auto batch_start = std::chrono::steady_clock::now();
    closed_in_batch_.clear();
    DrainCompletions();
    for (const Poller::Event& event : events) {
      if (closed_in_batch_.count(event.fd) != 0) continue;  // stale event
      if (event.fd == wakeup_read_) {
        counters_.wakeups->Add(1);
        char drain[256];
        while (::read(wakeup_read_, drain, sizeof drain) > 0) {
        }
        continue;
      }
      bool is_listener = false;
      for (int fd : listen_fds_) {
        if (fd == event.fd) {
          is_listener = true;
          break;
        }
      }
      if (is_listener) {
        if (!draining) AcceptReady(event.fd);
        continue;
      }
      auto it = connections_.find(event.fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      std::shared_ptr<Connection> connection = it->second;
      if (event.error && !connection->executing) {
        // Hangup/error with nothing in flight: nothing left to deliver.
        CloseConnection(connection->fd);
        continue;
      }
      if (event.writable) WriteReady(connection);
      if (connection->fd >= 0 && event.readable && !connection->closing) {
        ReadReady(connection);
      }
    }
    counters_.loop_iterations->Add(1);
    counters_.loop_iteration_us->Observe(ElapsedUs(batch_start));
  }

  for (auto& [fd, connection] : connections_) {
    connection->fd = -1;
    ::close(fd);
  }
  connections_.clear();
  for (int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
}

void Server::AcceptReady(int listen_fd) {
  while (true) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Descriptor pressure: evicting our idlest request-free
        // connection frees exactly one fd — retry the accept with it
        // rather than leaving the backlog to starve.
        if (EvictIdleConnection()) continue;
        // Nothing evictable — every connection has work in flight, or
        // the table is full of descriptors that are not ours to close.
        // Shed the pending connection through the reserve descriptor:
        // close it, accept, close the accepted socket, reopen. Turning
        // one client away is the price of draining the backlog — a
        // level-triggered listener that can never accept would
        // otherwise keep the loop spinning at full CPU.
        if (reserve_fd_ >= 0) {
          ::close(reserve_fd_);
          reserve_fd_ = -1;
          int shed = ::accept(listen_fd, nullptr, nullptr);
          if (shed >= 0) ::close(shed);
          reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
          if (shed >= 0) {
            counters_.emfile_shed->Add(1);
            obs::LogWarn(
                "descriptor pressure: shed one pending connection "
                "(every open connection has work in flight)");
            continue;
          }
        }
        return;
      }
      return;  // EAGAIN (drained) or a transient like ECONNABORTED
    }
    if (connections_.size() >= config_.max_connections) {
      ::close(fd);
      counters_.connlimit_closed->Add(1);
      obs::LogWarn("max_connections=%zu reached; closed a new arrival",
                   config_.max_connections);
      continue;
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    connection->last_active = ++activity_clock_;
    connections_[fd] = connection;
    poller_->Add(fd, /*read=*/true, /*write=*/false);
    counters_.connections->Add(1);
    counters_.connections_open->Set(
        static_cast<int64_t>(connections_.size()));
  }
}

void Server::ReadReady(const std::shared_ptr<Connection>& connection) {
  char chunk[65536];
  // Bounded per readiness event so one flooding client cannot hog the
  // loop; level-triggered polling re-wakes us for the remainder.
  for (int i = 0; i < 16; ++i) {
    size_t n = 0;
    server_internal::RecvStatus status = server_internal::RecvChunk(
        connection->fd, chunk, sizeof chunk, &n);
    if (status == server_internal::RecvStatus::kData) {
      connection->in.append(chunk, n);
      connection->last_active = ++activity_clock_;
      continue;
    }
    if (status == server_internal::RecvStatus::kRetry) break;
    // kClosed / kError: no more requests will arrive; finish what is
    // already framed or in flight, flush, then close.
    connection->closing = true;
    break;
  }
  FrameAndDispatch(connection);
}

void Server::FrameAndDispatch(const std::shared_ptr<Connection>& connection) {
  std::string& in = connection->in;
  size_t start = 0;
  size_t newline;
  while ((newline = in.find('\n', start)) != std::string::npos) {
    std::string line = in.substr(start, newline - start);
    start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    connection->pending_lines.push_back(std::move(line));
  }
  in.erase(0, start);
  if (in.size() > config_.max_line_bytes) {
    // Framing can't be trusted past an overrun: answer and hang up.
    connection->pending_lines.clear();
    connection->closing = true;
    in.clear();
    in.shrink_to_fit();
    QueueResponse(
        connection,
        protocol::EncodeResponse(
            protocol::Response(protocol::ErrorResponse(
                protocol::Error{"EPROTO", "request line too long"},
                JsonValue())),
            connection->wire.encoding));
    if (connection->fd < 0) return;
  }
  DispatchPending(connection);
}

void Server::DispatchPending(const std::shared_ptr<Connection>& connection) {
  // Serial order per connection: at most one request from this
  // connection executes at a time, so responses come back in arrival
  // order — the v1 contract — while other connections run concurrently.
  while (connection->fd >= 0 && !connection->executing &&
         !connection->pending_lines.empty()) {
    std::string line = std::move(connection->pending_lines.front());
    connection->pending_lines.pop_front();
    ServeLine(connection, line);
  }
  if (connection->fd < 0) return;
  if (connection->closing && !connection->executing &&
      connection->pending_lines.empty() &&
      connection->out_sent >= connection->out.size()) {
    CloseConnection(connection->fd);
    return;
  }
  UpdateInterest(connection);
}

void Server::ServeLine(const std::shared_ptr<Connection>& connection,
                       const std::string& line) {
  counters_.requests->Add(1);
  protocol::Encoding encoding = connection->wire.encoding;
  protocol::Error parse_error;
  JsonValue id;
  std::optional<protocol::Request> request =
      protocol::ParseRequest(line, &parse_error, &id);
  if (!request.has_value()) {
    QueueResponse(connection,
                  protocol::EncodeResponse(
                      protocol::Response(
                          protocol::ErrorResponse(parse_error, id)),
                      encoding));
    return;
  }

  // HELLO mutates this connection's negotiated wire state, which only
  // the loop thread may touch — inline by necessity.
  if (request->cmd == protocol::Command::kHello) {
    protocol::Response response = protocol::NegotiateHello(
        *request, config_.encodings, &connection->wire);
    registry_.CountNegotiatedEncoding(connection->wire.encoding);
    QueueResponse(connection, protocol::EncodeResponse(
                                  response, connection->wire.encoding));
    return;
  }

  // PING, STATS, and METRICS are the monitoring path: inline on the
  // loop — no admission, no pool queue — so they stay responsive even
  // when the pool is saturated with a request backlog (all three only
  // touch counters and briefly-held registry/session locks).
  if (request->cmd == protocol::Command::kPing ||
      request->cmd == protocol::Command::kStats ||
      request->cmd == protocol::Command::kMetrics) {
    QueueResponse(connection, protocol::EncodeResponse(
                                  registry_.Handle(*request), encoding));
    return;
  }

  // Admission control; the admission state is loop-owned, no locking
  // (the metrics handles themselves are lock-free from any thread).
  if (inflight_ >= config_.max_inflight) {
    counters_.rejected_global->Add(1);
    QueueResponse(connection,
                  protocol::EncodeResponse(
                      protocol::Response(BusyResponse(id, "server")),
                      encoding));
    return;
  }
  size_t& session_inflight = inflight_by_session_[request->session];
  if (session_inflight >= config_.max_inflight_per_session) {
    counters_.rejected_session->Add(1);
    QueueResponse(connection,
                  protocol::EncodeResponse(
                      protocol::Response(BusyResponse(id, "session")),
                      encoding));
    return;
  }
  ++inflight_;
  ++session_inflight;
  counters_.inflight->Set(static_cast<int64_t>(inflight_));

  // Fork execution onto the pool. The response is encoded on the worker
  // (under the encoding negotiated at dispatch time) so the loop only
  // ever shuttles ready-made bytes.
  connection->executing = true;
  connection->last_active = ++activity_clock_;
  auto request_ptr = std::make_shared<protocol::Request>(std::move(*request));
  std::weak_ptr<Connection> weak = connection;
  std::string session = request_ptr->session;
  auto dispatched = std::chrono::steady_clock::now();
  pool_->Submit([this, request_ptr, weak, encoding, dispatched,
                 session = std::move(session)]() mutable {
    // Queue wait = dispatch accepted -> a worker picked the request up;
    // stamped into the request so the session layer renders it in the
    // trace spans and the slow-query records.
    request_ptr->queue_wait_us = ElapsedUs(dispatched);
    counters_.queue_wait_us->Observe(request_ptr->queue_wait_us);
    protocol::Response response = registry_.Handle(*request_ptr);
    std::string bytes = protocol::EncodeResponse(response, encoding);
    {
      base::MutexLock lock(&completions_mutex_);
      completions_.push_back(
          Completion{std::move(weak), std::move(bytes), std::move(session)});
    }
    char one = 1;
    // EAGAIN (pipe full) is fine: a wakeup is already pending.
    ssize_t ignored = ::write(wakeup_write_, &one, 1);
    (void)ignored;
  });
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    base::MutexLock lock(&completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    // The admission slot is released even when the connection died mid-
    // request; `session` rode along for exactly this.
    ReleaseAdmission(completion.session);
    std::shared_ptr<Connection> connection = completion.connection.lock();
    if (connection == nullptr || connection->fd < 0) continue;
    connection->executing = false;
    QueueResponse(connection, std::move(completion.bytes));
    if (connection->fd >= 0) DispatchPending(connection);
  }
}

void Server::ReleaseAdmission(const std::string& session) {
  if (inflight_ > 0) --inflight_;
  counters_.inflight->Set(static_cast<int64_t>(inflight_));
  auto it = inflight_by_session_.find(session);
  if (it != inflight_by_session_.end() && --it->second == 0) {
    inflight_by_session_.erase(it);
  }
}

void Server::QueueResponse(const std::shared_ptr<Connection>& connection,
                           std::string bytes) {
  if (connection->fd < 0) return;
  connection->out += bytes;
  FlushOut(connection);
}

void Server::FlushOut(const std::shared_ptr<Connection>& connection) {
  std::string& out = connection->out;
  while (connection->out_sent < out.size()) {
    ssize_t n = ::send(connection->fd, out.data() + connection->out_sent,
                       out.size() - connection->out_sent, MSG_NOSIGNAL);
    if (n > 0) {
      connection->out_sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConnection(connection->fd);  // peer is gone
    return;
  }
  if (connection->out_sent >= out.size()) {
    out.clear();
    connection->out_sent = 0;
  } else if (connection->out_sent > (1u << 20)) {
    // Compact occasionally so a long-lived slow reader doesn't pin the
    // already-sent prefix forever.
    out.erase(0, connection->out_sent);
    connection->out_sent = 0;
  }
  size_t unsent = out.size() - connection->out_sent;
  if (unsent > config_.max_outbuf_bytes) {
    // The client stopped reading; its backlog must not grow the
    // daemon's memory without bound.
    counters_.overflow_closed->Add(1);
    obs::LogWarn(
        "client fd=%d stopped reading (%zu unsent bytes); closing",
        connection->fd, unsent);
    CloseConnection(connection->fd);
    return;
  }
  if (connection->closing && !connection->executing &&
      connection->pending_lines.empty() && unsent == 0) {
    CloseConnection(connection->fd);
    return;
  }
  UpdateInterest(connection);
}

void Server::WriteReady(const std::shared_ptr<Connection>& connection) {
  FlushOut(connection);
}

void Server::UpdateInterest(const std::shared_ptr<Connection>& connection) {
  if (connection->fd < 0) return;
  bool want_read = !connection->closing;
  bool want_write = connection->out_sent < connection->out.size();
  if (want_read == connection->want_read &&
      want_write == connection->want_write) {
    return;
  }
  connection->want_read = want_read;
  connection->want_write = want_write;
  poller_->Mod(connection->fd, want_read, want_write);
}

void Server::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  it->second->fd = -1;  // marks the shared_ptr holders: this one is dead
  poller_->Del(fd);
  ::close(fd);
  connections_.erase(it);
  closed_in_batch_.insert(fd);
  counters_.connections_open->Set(static_cast<int64_t>(connections_.size()));
}

bool Server::EvictIdleConnection() {
  std::shared_ptr<Connection> idlest;
  for (auto& [fd, connection] : connections_) {
    if (connection->executing || !connection->pending_lines.empty() ||
        connection->out_sent < connection->out.size()) {
      continue;  // has a request or response in flight: not evictable
    }
    if (idlest == nullptr || connection->last_active < idlest->last_active) {
      idlest = connection;
    }
  }
  if (idlest == nullptr) return false;
  obs::LogDebug("descriptor pressure: evicting idle connection fd=%d",
                idlest->fd);
  CloseConnection(idlest->fd);
  counters_.idle_evicted->Add(1);
  return true;
}

bool Server::AnyExecuting() const { return inflight_ > 0; }

void Server::Stop() {
  bool was_running = running_.exchange(false);
  if (was_running) {
    char one = 1;
    ssize_t ignored = ::write(wakeup_write_, &one, 1);
    (void)ignored;
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  pool_->Shutdown();
  // The loop thread is joined (or never launched): ownership of the
  // loop role reverts to the stopping thread for the teardown phase.
  loop_role_.AssertHeld();
  if (wakeup_read_ >= 0) ::close(wakeup_read_);
  if (wakeup_write_ >= 0) ::close(wakeup_write_);
  wakeup_read_ = wakeup_write_ = -1;
  if (reserve_fd_ >= 0) ::close(reserve_fd_);
  reserve_fd_ = -1;
  poller_.reset();
  for (int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
  if (was_running && !config_.unix_path.empty()) {
    ::unlink(config_.unix_path.c_str());
  }
}

Server::Stats Server::stats() const {
  Stats stats;
  stats.connections = counters_.connections->Value();
  stats.requests = counters_.requests->Value();
  stats.rejected_global = counters_.rejected_global->Value();
  stats.rejected_session = counters_.rejected_session->Value();
  stats.idle_closed = counters_.idle_evicted->Value() +
                      counters_.emfile_shed->Value() +
                      counters_.connlimit_closed->Value();
  stats.overflow_closed = counters_.overflow_closed->Value();
  return stats;
}

#endif  // _WIN32

}  // namespace vadalog

