#include "server/server.h"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <utility>

namespace vadalog {

#ifdef _WIN32

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      pool_(std::make_unique<WorkerPool>(options_.workers)),
      registry_([this] {
        SessionOptions session = options_.session;
        return session;
      }()) {}
Server::~Server() = default;
bool Server::Start(std::string* error) {
  if (error != nullptr) *error = "vadalogd requires POSIX sockets";
  return false;
}
void Server::Stop() {}
Server::Stats Server::stats() const { return {}; }
void Server::AcceptLoop(int) {}
void Server::ServeConnection(Connection*) {}
void Server::ReapConnections() {}
std::string Server::ExecuteLine(const std::string&) { return ""; }

#else  // POSIX

namespace server_internal {

RecvStatus RecvChunk(int fd, char* buffer, size_t capacity,
                     size_t* received) {
  *received = 0;
  while (true) {
    ssize_t n = ::recv(fd, buffer, capacity, 0);
    if (n > 0) {
      *received = static_cast<size_t>(n);
      return RecvStatus::kData;
    }
    if (n == 0) return RecvStatus::kClosed;  // orderly peer shutdown
    if (errno == EINTR) continue;            // signal: just re-issue
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Receive timeout (SO_RCVTIMEO) — NOT a closed peer: the caller
      // decides whether to keep waiting (normally) or wind down (server
      // stopping). Conflating this with n <= 0 used to drop idle
      // connections mid-request the moment a timeout or signal landed.
      return RecvStatus::kRetry;
    }
    return RecvStatus::kError;
  }
}

}  // namespace server_internal

namespace {

/// Sends the whole buffer; MSG_NOSIGNAL so a vanished client is an error
/// return, not a process-wide SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

JsonValue BusyResponse(const JsonValue& id, const char* scope) {
  JsonValue response = protocol::ErrorResponse(
      protocol::Error{"EBUSY",
                      std::string("admission control: too many in-flight "
                                  "requests (") +
                          scope + "); retry"},
      id);
  response.Set("retry", JsonValue::Bool(true));
  return response;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      pool_(std::make_unique<WorkerPool>(
          options_.workers == 0 ? 1 : options_.workers)),
      registry_([this] {
        SessionOptions session = options_.session;
        if (session.pool == nullptr) session.pool = pool_.get();
        return session;
      }()) {}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message + ": " + std::strerror(errno);
    for (int fd : listen_fds_) ::close(fd);
    listen_fds_.clear();
    return false;
  };

  if (options_.tcp) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return fail("socket(tcp)");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 64) != 0) {
      int saved = errno;
      ::close(fd);
      errno = saved;
      return fail("bind/listen(tcp)");
    }
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_tcp_port_ = ntohs(addr.sin_port);
    listen_fds_.push_back(fd);
  }

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    if (options_.unix_path.size() >= sizeof addr.sun_path) {
      if (error != nullptr) *error = "unix socket path too long";
      for (int fd : listen_fds_) ::close(fd);
      listen_fds_.clear();
      return false;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return fail("socket(unix)");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a crash
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 64) != 0) {
      int saved = errno;
      ::close(fd);
      errno = saved;
      return fail("bind/listen(unix)");
    }
    listen_fds_.push_back(fd);
  }

  if (listen_fds_.empty()) {
    if (error != nullptr) *error = "no listening endpoint configured";
    return false;
  }
  running_.store(true);
  for (int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { AcceptLoop(fd); });
  }
  return true;
}

void Server::ReapConnections() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection& connection = **it;
    if (!connection.done.load()) {
      ++it;
      continue;
    }
    if (connection.thread.joinable()) connection.thread.join();
    ::close(connection.fd);
    it = connections_.erase(it);
  }
}

void Server::AcceptLoop(int listen_fd) {
  while (running_.load()) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      // Transient (EINTR, aborted handshake) or persistent (EMFILE
      // under fd exhaustion): either way, back off instead of hot-
      // spinning a core, and reap — finished connections may be exactly
      // what frees the descriptors accept needs.
      ReapConnections();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (options_.recv_timeout_ms != 0) {
      timeval tv{};
      tv.tv_sec = options_.recv_timeout_ms / 1000;
      tv.tv_usec =
          static_cast<suseconds_t>(options_.recv_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections;
    }
    ReapConnections();
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    connections_.push_back(std::make_unique<Connection>());
    Connection* connection = connections_.back().get();
    connection->fd = fd;
    connection->thread =
        std::thread([this, connection] { ServeConnection(connection); });
  }
}

void Server::ServeConnection(Connection* connection) {
  int fd = connection->fd;
  std::string buffer;
  char chunk[65536];
  bool closing = false;
  while (true) {
    size_t n = 0;
    server_internal::RecvStatus status =
        server_internal::RecvChunk(fd, chunk, sizeof chunk, &n);
    if (status == server_internal::RecvStatus::kRetry) {
      // Receive timeout: keep waiting while the server runs (any
      // partially-received request stays buffered), wind down once it
      // stops — the periodic wake-up is what bounds a shutdown drain.
      if (!running_.load()) break;
      continue;
    }
    if (status != server_internal::RecvStatus::kData) break;
    buffer.append(chunk, n);
    size_t start = 0;
    size_t newline;
    while ((newline = buffer.find('\n', start)) != std::string::npos) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = ExecuteLine(line);
      if (!SendAll(fd, response + "\n")) {
        closing = true;  // peer is gone; stop reading too
        break;
      }
    }
    buffer.erase(0, start);
    if (closing) break;
    if (buffer.size() > options_.max_line_bytes) {
      // Framing can't be trusted past an overrun: answer and hang up.
      SendAll(fd, protocol::ErrorResponse(
                      protocol::Error{"EPROTO", "request line too long"},
                      JsonValue())
                          .Dump() +
                      "\n");
      break;
    }
  }
  // The fd is closed by the reaper (ReapConnections / Stop), which
  // joins this thread first — a single owner for the descriptor, so a
  // racing shutdown() cannot hit a recycled fd.
  connection->done.store(true);
}

std::string Server::ExecuteLine(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  protocol::Error parse_error;
  JsonValue id;
  std::optional<protocol::Request> request =
      protocol::ParseRequest(line, &parse_error, &id);
  if (!request.has_value()) {
    return protocol::ErrorResponse(parse_error, id).Dump();
  }

  // PING and STATS are the monitoring path: they run inline on the
  // connection thread — no admission, no pool queue — so they stay
  // responsive even when the pool is saturated with a request backlog
  // (both only touch counters and briefly-held registry/session locks).
  if (request->cmd == protocol::Command::kPing ||
      request->cmd == protocol::Command::kStats) {
    return registry_.Handle(*request).Dump();
  }

  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    if (inflight_ >= options_.max_inflight) {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.rejected_global;
      return BusyResponse(id, "server").Dump();
    }
    size_t& session_inflight = inflight_by_session_[request->session];
    if (session_inflight >= options_.max_inflight_per_session) {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.rejected_session;
      return BusyResponse(id, "session").Dump();
    }
    ++inflight_;
    ++session_inflight;
  }

  // Execute on the pool: at most pool-size requests compute at once, the
  // rest queue FIFO behind the admission caps.
  JsonValue response;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  pool_->Submit([&] {
    JsonValue result = registry_.Handle(*request);
    std::lock_guard<std::mutex> lock(done_mutex);
    response = std::move(result);
    done = true;
    done_cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return done; });
  }

  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    --inflight_;
    auto it = inflight_by_session_.find(request->session);
    if (it != inflight_by_session_.end() && --it->second == 0) {
      inflight_by_session_.erase(it);
    }
  }
  return response.Dump();
}

void Server::Stop() {
  bool was_running = running_.exchange(false);
  if (!was_running && listen_fds_.empty()) return;
  for (int fd : listen_fds_) {
    ::shutdown(fd, SHUT_RDWR);  // wakes the blocking accept on Linux
    ::close(fd);
  }
  listen_fds_.clear();
  for (std::thread& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  accept_threads_.clear();

  std::list<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    ::shutdown(connection->fd, SHUT_RDWR);  // readers see EOF
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) {
      connection->thread.join();  // in-flight requests finish first
    }
    ::close(connection->fd);
  }
  pool_->Shutdown();
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

#endif  // _WIN32

}  // namespace vadalog
