#include "server/worker_pool.h"

#include <atomic>
#include <memory>

#include "base/mutex.h"
#include "obs/metrics.h"

namespace vadalog {
namespace {

/// Shared state of one ParallelInvoke fork. Helpers and the caller race
/// for tickets; only ticket winners run `fn`. `done`/`cv` let the caller
/// wait for exactly the helpers that won a ticket.
///
/// Revocation-handoff invariant (the reason no NO_THREAD_SAFETY_ANALYSIS
/// escape is needed here): `tickets` and `done` are atomics, so the race
/// between helpers claiming tickets and the caller revoking the rest is
/// resolved by fetch_add alone — no capability guards them, and the
/// analysis has nothing to mis-flag. The only lock, `mutex`, exists
/// purely to pair each done-increment with the caller's predicate check
/// so the notify cannot be lost; both sides take it in properly scoped
/// blocks the analysis verifies as balanced.
struct ForkState {
  const std::function<void()>* fn = nullptr;
  size_t total = 0;                 // helper tasks enqueued
  std::atomic<size_t> tickets{0};   // claim counter (helpers + revocations)
  std::atomic<size_t> done{0};      // helpers that finished running fn
  base::Mutex mutex;
  base::CondVar cv;
};

}  // namespace

WorkerPool::WorkerPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      base::MutexLock lock(&mutex_);
      while (!stop_ && queue_.empty()) cv_.Wait(mutex_);
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_ != nullptr) {
        queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    task();
  }
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    base::MutexLock lock(&mutex_);
    ++stats_.submitted;
    queue_.push_back(std::move(task));
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  cv_.NotifyOne();
}

void WorkerPool::ParallelInvoke(size_t extra_workers,
                                const std::function<void()>& fn) {
  if (extra_workers == 0) {
    fn();
    return;
  }
  auto state = std::make_shared<ForkState>();
  state->fn = &fn;
  state->total = extra_workers;
  {
    base::MutexLock lock(&mutex_);
    ++stats_.forks;
    for (size_t i = 0; i < extra_workers; ++i) {
      // The task keeps the ForkState alive; `fn` itself is only borrowed,
      // which is safe because a helper can hold a ticket only if it
      // claimed one before the caller revoked the rest — and the caller
      // does not return until every ticket holder is done.
      queue_.push_back([state] {
        if (state->tickets.fetch_add(1) < state->total) {
          (*state->fn)();
          {
            // Empty critical section: pairs the done increment with the
            // caller's predicate check so the notify cannot be lost.
            base::MutexLock fork_lock(&state->mutex);
            state->done.fetch_add(1);
          }
          state->cv.NotifyAll();
        }
      });
    }
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  cv_.NotifyAll();

  fn();  // the calling thread takes a share instead of idling

  // Revoke every ticket not yet claimed: helpers still sitting in the
  // queue (possibly behind long-running daemon requests) become no-ops,
  // so the wait below only covers helpers that actually started.
  size_t revoked = 0;
  while (state->tickets.fetch_add(1) < state->total) ++revoked;
  size_t started = state->total - revoked;
  {
    base::MutexLock fork_lock(&state->mutex);
    while (state->done.load() < started) state->cv.Wait(state->mutex);
  }
  {
    base::MutexLock lock(&mutex_);
    stats_.fork_helpers += started;
    stats_.fork_revoked += revoked;
  }
}

void WorkerPool::Shutdown() {
  {
    base::MutexLock lock(&mutex_);
    if (stop_ && threads_.empty()) return;
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

WorkerPool::Stats WorkerPool::stats() const {
  base::MutexLock lock(&mutex_);
  return stats_;
}

}  // namespace vadalog
