#include "server/worker_pool.h"

#include <atomic>
#include <memory>

#include "obs/metrics.h"

namespace vadalog {
namespace {

/// Shared state of one ParallelInvoke fork. Helpers and the caller race
/// for tickets; only ticket winners run `fn`. `done`/`cv` let the caller
/// wait for exactly the helpers that won a ticket.
struct ForkState {
  const std::function<void()>* fn = nullptr;
  size_t total = 0;                 // helper tasks enqueued
  std::atomic<size_t> tickets{0};   // claim counter (helpers + revocations)
  std::atomic<size_t> done{0};      // helpers that finished running fn
  std::mutex mutex;
  std::condition_variable cv;
};

}  // namespace

WorkerPool::WorkerPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_ != nullptr) {
        queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    task();
  }
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submitted;
    queue_.push_back(std::move(task));
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  cv_.notify_one();
}

void WorkerPool::ParallelInvoke(size_t extra_workers,
                                const std::function<void()>& fn) {
  if (extra_workers == 0) {
    fn();
    return;
  }
  auto state = std::make_shared<ForkState>();
  state->fn = &fn;
  state->total = extra_workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.forks;
    for (size_t i = 0; i < extra_workers; ++i) {
      // The task keeps the ForkState alive; `fn` itself is only borrowed,
      // which is safe because a helper can hold a ticket only if it
      // claimed one before the caller revoked the rest — and the caller
      // does not return until every ticket holder is done.
      queue_.push_back([state] {
        if (state->tickets.fetch_add(1) < state->total) {
          (*state->fn)();
          {
            // Empty critical section: pairs the done increment with the
            // caller's predicate check so the notify cannot be lost.
            std::lock_guard<std::mutex> fork_lock(state->mutex);
            state->done.fetch_add(1);
          }
          state->cv.notify_all();
        }
      });
    }
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  cv_.notify_all();

  fn();  // the calling thread takes a share instead of idling

  // Revoke every ticket not yet claimed: helpers still sitting in the
  // queue (possibly behind long-running daemon requests) become no-ops,
  // so the wait below only covers helpers that actually started.
  size_t revoked = 0;
  while (state->tickets.fetch_add(1) < state->total) ++revoked;
  size_t started = state->total - revoked;
  {
    std::unique_lock<std::mutex> fork_lock(state->mutex);
    state->cv.wait(fork_lock,
                   [&] { return state->done.load() >= started; });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.fork_helpers += started;
    stats_.fork_revoked += revoked;
  }
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ && threads_.empty()) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

WorkerPool::Stats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace vadalog
