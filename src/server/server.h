// vadalogd's socket front end: a TCP (loopback) and/or Unix-domain
// accept loop feeding the newline-delimited JSON protocol into a
// SessionRegistry, with the request execution forked onto the shared
// WorkerPool — the same pool the parallel proof searches fork their
// frontier levels onto.
//
// Threading model: one accept thread per listening socket; one
// lightweight thread per connection doing blocking line I/O (connections
// are cheap to park in a read); request *execution* happens on the pool,
// so at most pool-size requests compute at once and everything else
// queues fairly FIFO. Admission control sits in front of the queue:
//
//   * a global cap on in-flight (queued + executing) requests, and
//   * a per-session cap so one chatty session cannot monopolize the
//     pool while other sessions starve;
//
// both reject with a structured EBUSY error (clients retry) instead of
// queueing unboundedly. Graceful shutdown: stop accepting, shut down the
// connection sockets (readers see EOF), finish in-flight requests, join
// everything.

#ifndef VADALOG_SERVER_SERVER_H_
#define VADALOG_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/session.h"
#include "server/worker_pool.h"

namespace vadalog {

struct ServerOptions {
  /// Listen on 127.0.0.1:tcp_port when `tcp` is set; port 0 binds an
  /// ephemeral port (read it back from tcp_port() after Start).
  bool tcp = true;
  uint16_t tcp_port = 0;

  /// Additionally listen on this Unix-domain socket path when non-empty.
  /// A stale socket file at the path is unlinked first.
  std::string unix_path;

  /// Worker pool size (request execution + parallel search frontiers).
  size_t workers = 4;

  /// Admission control (see header comment).
  size_t max_inflight = 64;
  size_t max_inflight_per_session = 16;

  /// A request line longer than this kills its connection (the framing
  /// cannot be trusted past an overrun).
  size_t max_line_bytes = 8ull << 20;

  /// When non-zero, accepted sockets get an SO_RCVTIMEO of this many
  /// milliseconds: a blocked connection reader wakes periodically
  /// (EAGAIN), re-checks the server's running flag, and keeps waiting —
  /// bounding how long a shutdown drain can park on an idle connection
  /// without ever dropping a partially-received request.
  uint32_t recv_timeout_ms = 0;

  /// Per-session knobs (cache cap, default search threads).
  SessionOptions session;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // Stop()

  /// Binds and launches the accept loops. False + `error` on failure.
  bool Start(std::string* error);

  /// Graceful shutdown; idempotent.
  void Stop();

  /// The bound TCP port (after Start) or 0 when TCP is disabled.
  uint16_t tcp_port() const { return bound_tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  SessionRegistry& registry() { return registry_; }
  WorkerPool& pool() { return *pool_; }

  struct Stats {
    uint64_t connections = 0;
    uint64_t requests = 0;
    uint64_t rejected_global = 0;
    uint64_t rejected_session = 0;
  };
  Stats stats() const;

 private:
  /// One live client connection. The fd has a single owner — the reaper
  /// (ReapConnections / Stop) — which joins the thread before closing,
  /// so a racing shutdown() can never hit a recycled descriptor.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop(int listen_fd);
  void ServeConnection(Connection* connection);
  /// Joins and closes connections whose threads have finished; called
  /// from the accept loops so a long-lived daemon does not accumulate
  /// one fd + one zombie thread per past connection.
  void ReapConnections();
  /// Executes one request line (admission-controlled, forked onto the
  /// pool; PING/STATS run inline) and returns the serialized response.
  std::string ExecuteLine(const std::string& line);

  ServerOptions options_;
  std::unique_ptr<WorkerPool> pool_;
  SessionRegistry registry_;

  std::atomic<bool> running_{false};
  uint16_t bound_tcp_port_ = 0;
  std::vector<int> listen_fds_;
  std::vector<std::thread> accept_threads_;

  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;

  std::mutex admission_mutex_;
  size_t inflight_ = 0;
  std::map<std::string, size_t> inflight_by_session_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

namespace server_internal {

/// One recv() with the error taxonomy the connection loop needs, exposed
/// for direct unit testing. Retries EINTR internally — a stray signal
/// (e.g. during a SIGTERM drain) must never drop an in-flight request —
/// and reports EAGAIN/EWOULDBLOCK (a receive timeout on a socket with
/// SO_RCVTIMEO) as kRetry, distinct from the peer closing. POSIX only.
enum class RecvStatus { kData, kClosed, kRetry, kError };
RecvStatus RecvChunk(int fd, char* buffer, size_t capacity,
                     size_t* received);

}  // namespace server_internal

}  // namespace vadalog

#endif  // VADALOG_SERVER_SERVER_H_
