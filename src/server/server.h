// vadalogd's socket front end: a single event loop owning every
// descriptor — the TCP (loopback) and Unix-domain listeners, all
// accepted connections, and a self-pipe — feeding the negotiated wire
// protocol into a SessionRegistry, with request *execution* forked onto
// the shared WorkerPool (the same pool the parallel proof searches fork
// their frontier levels onto).
//
// Threading model: exactly 1 + workers threads, independent of the
// connection count. The loop thread multiplexes all sockets through a
// Poller (epoll on Linux, poll portably; level-triggered): non-blocking
// reads accumulate into per-connection buffers, complete newline-framed
// requests are parsed and admission-checked on the loop, and execution
// happens on the pool. Workers hand the encoded response bytes back
// through a completion queue + self-pipe wakeup; the loop queues them
// onto the connection's out-buffer and drains it as the socket accepts
// writes. Consequences the old thread-per-connection design couldn't
// offer:
//
//   * idle connections cost one fd and ~nothing else — no parked reader
//     thread — so thousands of mostly-idle clients are fine;
//   * a slow-reading client cannot block anyone: its responses pile into
//     its own out-buffer (bounded by max_outbuf_bytes, beyond which the
//     connection is dropped) while the loop keeps serving others;
//   * descriptor pressure is survivable: on EMFILE the loop evicts its
//     idlest request-free connection instead of starving accept.
//
// Ordering contract: requests on one connection execute serially in
// arrival order (responses can't interleave or reorder — the v1
// contract); requests on different connections execute concurrently up
// to the pool size. Admission control sits in front of the pool queue:
// a global and a per-session cap on in-flight requests, both rejecting
// with a structured EBUSY (clients retry) instead of queueing
// unboundedly. The admission counters are owned by the loop thread —
// no mutex. PING and STATS run inline on the loop (no admission, no
// pool) so monitoring stays responsive under a saturated pool; HELLO
// also runs inline, because it mutates the connection's negotiated
// WireState, which only the loop may touch.
//
// Graceful shutdown: stop accepting and reading, drop requests not yet
// dispatched, finish executing ones, best-effort flush of out-buffers
// (bounded — a stopped server does not wait forever on a stalled
// reader), join the loop, drain the pool.

#ifndef VADALOG_SERVER_SERVER_H_
#define VADALOG_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "server/config.h"
#include "server/poller.h"
#include "server/session.h"
#include "server/worker_pool.h"

namespace vadalog {

/// Deprecated spelling: the knobs consolidated into ServerConfig
/// (server/config.h). Kept for one release so in-tree constructions
/// keep compiling; new code should say ServerConfig.
using ServerOptions = ServerConfig;

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();  // Stop()

  /// Binds the endpoints and launches the event loop. False + `error`
  /// on failure (including a config that fails Validate()).
  bool Start(std::string* error);

  /// Graceful shutdown; idempotent.
  void Stop();

  /// The bound TCP port (after Start) or 0 when TCP is disabled.
  uint16_t tcp_port() const { return bound_tcp_port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  SessionRegistry& registry() { return registry_; }
  WorkerPool& pool() { return *pool_; }
  /// The daemon's one metrics registry: every session's counter families
  /// plus the vadalogd_* server instruments; METRICS and the Prometheus
  /// scraper snapshot it.
  obs::MetricsRegistry& metrics() { return metrics_; }

  struct Stats {
    uint64_t connections = 0;
    uint64_t requests = 0;
    uint64_t rejected_global = 0;
    uint64_t rejected_session = 0;
    /// Idle request-free connections evicted under descriptor pressure
    /// (EMFILE/ENFILE on accept) or the max_connections cap.
    uint64_t idle_closed = 0;
    /// Connections dropped because their unsent response backlog
    /// crossed max_outbuf_bytes (client stopped reading).
    uint64_t overflow_closed = 0;
  };
  /// Read from the registry counters (the struct API is kept for the
  /// tests and tools that already consume it; `idle_closed` is the sum
  /// of the finer-grained evicted/shed/connlimit series METRICS splits).
  Stats stats() const;

 private:
  /// One live client connection; owned by the loop thread. Workers only
  /// ever hold a weak_ptr (inside a queued completion) — if the loop
  /// closed the connection meanwhile, the completion's response is
  /// dropped and only the admission bookkeeping survives.
  ///
  /// The fields themselves carry no GUARDED_BY (a nested struct cannot
  /// name the enclosing Server's loop_role_); instead every function
  /// that touches a Connection REQUIRES(loop_role_), which gives the
  /// same compile-time coverage one call frame up.
  struct Connection {
    int fd = -1;
    /// Negotiated wire state (HELLO); loop-thread only.
    protocol::WireState wire;
    /// Bytes received but not yet framed into a line.
    std::string in;
    /// Complete request lines waiting for their turn (serial order).
    std::deque<std::string> pending_lines;
    /// Encoded response bytes not yet accepted by the socket.
    std::string out;
    size_t out_sent = 0;
    /// A request from this connection is executing on the pool.
    bool executing = false;
    /// EOF seen or protocol fault: finish what's in flight, flush, close.
    bool closing = false;
    /// The interest currently registered with the poller, so Mod is
    /// only issued on transitions.
    bool want_read = true;
    bool want_write = false;
    /// Monotonic activity stamp; the EMFILE eviction picks the minimum.
    uint64_t last_active = 0;
  };

  /// A finished request coming back from the pool. `session` rides along
  /// so the loop can release the admission slot even if the connection
  /// died while the request ran.
  struct Completion {
    std::weak_ptr<Connection> connection;
    std::string bytes;
    std::string session;
  };

  /// The loop thread's body; claims loop_role_ for its lifetime, which
  /// is what lets it call every REQUIRES(loop_role_) helper below.
  void EventLoop();
  void AcceptReady(int listen_fd) REQUIRES(loop_role_);
  void ReadReady(const std::shared_ptr<Connection>& connection)
      REQUIRES(loop_role_);
  void WriteReady(const std::shared_ptr<Connection>& connection)
      REQUIRES(loop_role_);
  /// Splits the in-buffer into lines and serves pending ones while the
  /// connection has no request executing.
  void FrameAndDispatch(const std::shared_ptr<Connection>& connection)
      REQUIRES(loop_role_);
  void DispatchPending(const std::shared_ptr<Connection>& connection)
      REQUIRES(loop_role_);
  /// Serves one line: inline for HELLO/PING/STATS/parse errors/EBUSY,
  /// pool-forked for everything else (sets `executing`).
  void ServeLine(const std::shared_ptr<Connection>& connection,
                 const std::string& line) REQUIRES(loop_role_);
  /// Appends encoded bytes to the out-buffer, writes what the socket
  /// takes now, and updates write interest / overflow accounting.
  void QueueResponse(const std::shared_ptr<Connection>& connection,
                     std::string bytes) REQUIRES(loop_role_);
  void FlushOut(const std::shared_ptr<Connection>& connection)
      REQUIRES(loop_role_);
  void UpdateInterest(const std::shared_ptr<Connection>& connection)
      REQUIRES(loop_role_);
  void CloseConnection(int fd) REQUIRES(loop_role_);
  /// Moves queued completions onto their connections' out-buffers and
  /// releases their admission slots.
  void DrainCompletions() REQUIRES(loop_role_) EXCLUDES(completions_mutex_);
  /// Closes the idlest request-free connection (descriptor pressure).
  /// False when every connection has work in flight.
  bool EvictIdleConnection() REQUIRES(loop_role_);
  /// True while any connection still has a request on the pool.
  bool AnyExecuting() const REQUIRES(loop_role_);
  void ReleaseAdmission(const std::string& session) REQUIRES(loop_role_);

  /// The loop/accept/admission instrument handles (vadalogd_* families),
  /// registered once at construction. `idle_closed` of the Stats struct
  /// = idle_evicted + emfile_shed + connlimit_closed.
  struct Counters {
    obs::Counter* connections = nullptr;
    obs::Gauge* connections_open = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* rejected_global = nullptr;
    obs::Counter* rejected_session = nullptr;
    obs::Counter* idle_evicted = nullptr;
    obs::Counter* emfile_shed = nullptr;
    obs::Counter* connlimit_closed = nullptr;
    obs::Counter* overflow_closed = nullptr;
    obs::Gauge* inflight = nullptr;
    obs::Counter* loop_iterations = nullptr;
    obs::Histogram* loop_iteration_us = nullptr;
    obs::Counter* wakeups = nullptr;
    obs::Histogram* queue_wait_us = nullptr;
  };

  ServerConfig config_;
  std::unique_ptr<WorkerPool> pool_;
  /// Declared before registry_: sessions register their counter families
  /// here during construction and hold handles into it.
  obs::MetricsRegistry metrics_;
  obs::SlowQueryLog slow_log_;
  SessionRegistry registry_;
  Counters counters_;

  std::atomic<bool> running_{false};
  uint16_t bound_tcp_port_ = 0;
  std::vector<int> listen_fds_;
  int wakeup_read_ = -1;
  int wakeup_write_ = -1;
  /// The loop-thread ownership capability (a zero-cost "role" fake
  /// capability, base/mutex.h): it stands for "this code runs on the
  /// event-loop thread". EventLoop claims it for its lifetime; Start
  /// (before the thread launches) and Stop (after the join) assert it
  /// for the phases when no loop thread exists, so single-ownership-by-
  /// phase is what the analysis checks. Everything GUARDED_BY(loop_role_)
  /// is the state the comments used to call "loop-thread only" — an
  /// access from anywhere else is now a compile error under clang
  /// -Wthread-safety instead of a latent data race.
  base::ThreadRole loop_role_;

  /// An fd held in reserve (open on /dev/null) so accept can still make
  /// progress under EMFILE when no idle connection is evictable: close
  /// it, accept-and-close the pending connection, reopen.
  int reserve_fd_ GUARDED_BY(loop_role_) = -1;
  std::thread loop_thread_;
  std::unique_ptr<Poller> poller_;

  // Loop-thread state: single owner, enforced by loop_role_ (no mutex).
  std::map<int, std::shared_ptr<Connection>> connections_
      GUARDED_BY(loop_role_);
  /// Descriptors closed while handling the current event batch: a later
  /// event in the same batch may still name such an fd — possibly
  /// already recycled by an accept — and must be ignored.
  std::set<int> closed_in_batch_ GUARDED_BY(loop_role_);
  uint64_t activity_clock_ GUARDED_BY(loop_role_) = 0;
  size_t inflight_ GUARDED_BY(loop_role_) = 0;
  std::map<std::string, size_t> inflight_by_session_ GUARDED_BY(loop_role_);

  // The worker → loop handoff; the only cross-thread state.
  base::Mutex completions_mutex_;
  std::vector<Completion> completions_ GUARDED_BY(completions_mutex_);
};

namespace server_internal {

/// One recv() with the error taxonomy the event loop needs, exposed for
/// direct unit testing. Retries EINTR internally — a stray signal (e.g.
/// during a SIGTERM drain) must never drop an in-flight request — and
/// reports EAGAIN/EWOULDBLOCK as kRetry, distinct from the peer closing:
/// on the loop's non-blocking sockets kRetry means "drained for now,
/// wait for the next readiness event". POSIX only.
enum class RecvStatus { kData, kClosed, kRetry, kError };
RecvStatus RecvChunk(int fd, char* buffer, size_t capacity,
                     size_t* received);

}  // namespace server_internal

}  // namespace vadalog

#endif  // VADALOG_SERVER_SERVER_H_
