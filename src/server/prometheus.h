// Prometheus text-exposition rendering (format 0.0.4) of a METRICS
// snapshot: one `# HELP` / `# TYPE` header per metric family, one sample
// line per label set, histograms expanded into cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`.
//
// Extracted from the vadalog_metrics tool so the conversion is a library
// call: the tool is a thin wrapper, the unit tests exercise the renderer
// against registry snapshots directly, and the fuzz harness
// (fuzz/fuzz_metrics_snapshot.cc) can drive the whole
// parse-JSON → render-text path on untrusted bytes without a process
// boundary. Renders into a string — no I/O here.

#ifndef VADALOG_SERVER_PROMETHEUS_H_
#define VADALOG_SERVER_PROMETHEUS_H_

#include <string>

#include "server/json.h"

namespace vadalog {
namespace prometheus {

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
std::string EscapeLabelValue(const std::string& value);

/// Converts one registry snapshot (the "metrics" array of a METRICS
/// response) to the text exposition format, appended to `*out`. The
/// snapshot arrives sorted by (name, labels), so HELP/TYPE headers are
/// emitted on each name change. False when the document is not a
/// snapshot (not an array, a nameless metric, or a histogram whose
/// buckets/bounds disagree); `*out` then holds the prefix rendered so
/// far and should be discarded.
bool RenderMetricsText(const JsonValue& metrics, std::string* out);

/// Accepts either a full METRICS response ({"ok":true,"metrics":[...]})
/// or the bare metrics array, as JSON text. False + `*error` on a parse
/// failure or a document that is not a METRICS snapshot.
bool RenderDocumentText(const std::string& text, std::string* out,
                        std::string* error);

}  // namespace prometheus
}  // namespace vadalog

#endif  // VADALOG_SERVER_PROMETHEUS_H_
