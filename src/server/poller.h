// A minimal readiness-notification facade for the server's event loop:
// register descriptors with read/write interest, wait for events. Two
// backends behind one interface —
//
//   * epoll (Linux): O(ready) wakeups, the production backend for
//     hundreds-to-thousands of mostly-idle connections;
//   * poll (portable POSIX): the interest set is replayed into a pollfd
//     array per Wait. O(registered) per wakeup, which is fine at the
//     scale where it is the only option.
//
// The backend is chosen at construction (ServerConfig.poller), so the
// poll path is exercised by tests on Linux too instead of rotting as
// dead #ifdef code. Level-triggered semantics on both backends: an event
// repeats until the condition is drained, so a handler that reads or
// writes less than everything is woken again rather than wedged.
//
// Not thread-safe: exactly one thread — the event loop — owns a Poller.

#ifndef VADALOG_SERVER_POLLER_H_
#define VADALOG_SERVER_POLLER_H_

#include <map>
#include <vector>

namespace vadalog {

class Poller {
 public:
  /// Backend selection; kEpoll silently degrades to kPoll on platforms
  /// without epoll, so callers can always ask for the fast path.
  enum class Backend { kEpoll, kPoll };

  explicit Poller(Backend backend);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// False when the backend failed to initialize (epoll_create failure);
  /// a !ok() Poller must not be used.
  bool ok() const { return ok_; }
  /// The backend actually in effect after any fallback.
  Backend backend() const { return backend_; }

  /// Registers `fd` with the given interest; Add-ing a registered fd or
  /// Mod/Del-ing an unregistered one is a caller bug (asserted in debug).
  void Add(int fd, bool want_read, bool want_write);
  void Mod(int fd, bool want_read, bool want_write);
  void Del(int fd);

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// Error/hangup: the owner should read (draining any final bytes
    /// and observing EOF) and close.
    bool error = false;
  };

  /// Blocks up to `timeout_ms` (-1 = no timeout) and fills `events` with
  /// the ready set. Returns the event count, 0 on timeout; EINTR is
  /// retried internally. A negative return is an unrecoverable backend
  /// error.
  int Wait(std::vector<Event>* events, int timeout_ms);

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  Backend backend_;
  bool ok_ = false;
  int epoll_fd_ = -1;
  /// The poll backend's registry (ordered so Wait's replay is
  /// deterministic); unused by epoll.
  std::map<int, Interest> interest_;
};

}  // namespace vadalog

#endif  // VADALOG_SERVER_POLLER_H_
