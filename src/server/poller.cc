#include "server/poller.h"

#ifndef _WIN32

#include <errno.h>
#include <poll.h>

#include <cassert>
#include <cstring>

#ifdef __linux__
#include <sys/epoll.h>
#include <unistd.h>
#define VADALOG_HAVE_EPOLL 1
#else
#define VADALOG_HAVE_EPOLL 0
#endif

namespace vadalog {

#if VADALOG_HAVE_EPOLL
namespace {

uint32_t EpollMask(bool want_read, bool want_write) {
  uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  // EPOLLERR | EPOLLHUP are implicit: epoll always reports them.
  return mask;
}

}  // namespace
#endif

Poller::Poller(Backend backend) : backend_(backend) {
#if VADALOG_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      backend_ = Backend::kPoll;  // degrade rather than fail to start
    }
  }
#else
  if (backend_ == Backend::kEpoll) backend_ = Backend::kPoll;
#endif
  ok_ = true;
}

Poller::~Poller() {
#if VADALOG_HAVE_EPOLL
  if (epoll_fd_ >= 0) close(epoll_fd_);
#endif
}

void Poller::Add(int fd, bool want_read, bool want_write) {
#if VADALOG_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    int rc = epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    assert(rc == 0);
    (void)rc;
    return;
  }
#endif
  interest_[fd] = Interest{want_read, want_write};
}

void Poller::Mod(int fd, bool want_read, bool want_write) {
#if VADALOG_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    int rc = epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
    assert(rc == 0);
    (void)rc;
    return;
  }
#endif
  auto it = interest_.find(fd);
  assert(it != interest_.end());
  it->second = Interest{want_read, want_write};
}

void Poller::Del(int fd) {
#if VADALOG_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};  // non-null for pre-2.6.9 kernel ABI compatibility
    int rc = epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
    assert(rc == 0);
    (void)rc;
    return;
  }
#endif
  size_t erased = interest_.erase(static_cast<int>(fd));
  assert(erased == 1);
  (void)erased;
}

int Poller::Wait(std::vector<Event>* events, int timeout_ms) {
  events->clear();
#if VADALOG_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ready[64];
    int count;
    do {
      count = epoll_wait(epoll_fd_, ready, 64, timeout_ms);
    } while (count < 0 && errno == EINTR);
    if (count < 0) return -1;
    events->reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      Event event;
      event.fd = ready[i].data.fd;
      event.readable = (ready[i].events & EPOLLIN) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(event);
    }
    return count;
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, want] : interest_) {
    pollfd pfd{};
    pfd.fd = fd;
    if (want.read) pfd.events |= POLLIN;
    if (want.write) pfd.events |= POLLOUT;
    fds.push_back(pfd);
  }
  int count;
  do {
    count = poll(fds.data(), fds.size(), timeout_ms);
  } while (count < 0 && errno == EINTR);
  if (count < 0) return -1;
  for (const pollfd& pfd : fds) {
    if (pfd.revents == 0) continue;
    Event event;
    event.fd = pfd.fd;
    event.readable = (pfd.revents & POLLIN) != 0;
    event.writable = (pfd.revents & POLLOUT) != 0;
    event.error = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events->push_back(event);
  }
  return count;
}

}  // namespace vadalog

#else  // _WIN32

namespace vadalog {

Poller::Poller(Backend backend) : backend_(backend) {}
Poller::~Poller() = default;
void Poller::Add(int, bool, bool) {}
void Poller::Mod(int, bool, bool) {}
void Poller::Del(int) {}
int Poller::Wait(std::vector<Event>*, int) { return -1; }

}  // namespace vadalog

#endif  // _WIN32
