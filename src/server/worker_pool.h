// A persistent worker pool with one shared FIFO work queue, serving two
// callers at once:
//
//   * the reasoning daemon submits client-request handlers with Submit()
//     (fire-and-forget; completion is tracked by the caller), and
//   * the parallel linear BFS forks its per-level expansion onto the same
//     threads with ParallelInvoke(), replacing the per-level
//     std::thread spawn/join that previously cost a fresh create+join per
//     frontier level (wasteful on searches with thousands of narrow
//     levels).
//
// ParallelInvoke is deadlock-free by construction even when every pool
// thread is busy (including when the caller itself runs on a pool thread,
// as daemon queries do): each queued helper must claim a ticket before
// running, and the calling thread — after taking its own share of the
// work — claims every ticket still outstanding, so helpers that were
// never scheduled become no-ops and are never waited for. The caller only
// blocks on helpers that actually started, and those run to completion on
// their own threads. The price is that a fully loaded pool degrades to
// the caller doing all the work itself, which is exactly the single-
// threaded fallback the search already has.
//
// This header is intentionally dependency-free (standard library only):
// it lives in server/ next to its main consumer, but the engine links
// against it too, below the session/server layers.

#ifndef VADALOG_SERVER_WORKER_POOL_H_
#define VADALOG_SERVER_WORKER_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace vadalog {

namespace obs {
class Gauge;
}  // namespace obs

class WorkerPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit WorkerPool(size_t num_threads);

  /// Drains and joins (Shutdown).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task. The pool never rejects work; backpressure is the
  /// caller's job (the server's admission control, the search's level
  /// width). Must not be called after Shutdown().
  void Submit(std::function<void()> task);

  /// Runs `fn` on the calling thread and on up to `extra_workers` pool
  /// threads concurrently, returning when every run that started has
  /// finished. `fn` must partition its own work (e.g. over a shared
  /// atomic counter): invocations that the pool never got to are revoked,
  /// not re-run, so `fn` being invoked fewer than 1 + extra_workers times
  /// must still complete the whole job.
  void ParallelInvoke(size_t extra_workers, const std::function<void()>& fn);

  /// Stops accepting work, runs what is already queued, joins all
  /// threads. Idempotent; called by the destructor.
  void Shutdown();

  struct Stats {
    uint64_t submitted = 0;       // Submit() tasks
    uint64_t forks = 0;           // ParallelInvoke() calls
    uint64_t fork_helpers = 0;    // helper runs that actually started
    uint64_t fork_revoked = 0;    // helper runs revoked unstarted
  };
  /// Snapshot of the counters (taken under the queue lock).
  Stats stats() const;

  /// Observability: when set, the gauge tracks queue_.size() — updated
  /// under the queue lock on every push/pop, so the cost is one relaxed
  /// store on paths that already hold the mutex. Set once at startup,
  /// before any Submit. Takes the queue lock: the workers are already
  /// running by the time the server wires the gauge, so publishing the
  /// pointer needs the same lock its readers hold.
  void set_queue_depth_gauge(obs::Gauge* gauge) EXCLUDES(mutex_) {
    base::MutexLock lock(&mutex_);
    queue_depth_ = gauge;
  }

 private:
  void WorkerLoop();

  mutable base::Mutex mutex_;
  base::CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  /// Mutated only by the constructor (before any concurrency exists) and
  /// Shutdown (which the caller must not race with num_threads()).
  std::vector<std::thread> threads_;
  bool stop_ GUARDED_BY(mutex_) = false;
  Stats stats_ GUARDED_BY(mutex_);
  obs::Gauge* queue_depth_ GUARDED_BY(mutex_) = nullptr;
};

}  // namespace vadalog

#endif  // VADALOG_SERVER_WORKER_POOL_H_
