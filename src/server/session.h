// Named reasoning sessions and the registry behind vadalogd.
//
// A session owns one parsed, classified program (a Reasoner) and one
// long-lived ProofSearchCache, so the cross-query memoization that makes
// repeated proof searches fast survives across requests and across
// clients — the whole point of running a daemon instead of the one-shot
// CLI. Concurrency contract:
//
//   * program + database are guarded by a reader-writer lock: queries
//     take it shared (the Reasoner's query entry points are const and
//     re-entrant), ADD_FACTS and inline-query parsing (which interns
//     symbols) take it exclusive;
//   * the cache is internally synchronized (ProofSearchCache's own
//     reader-writer lock), so same-session proof-search queries run
//     CONCURRENTLY: each takes the session's cache lock shared — that
//     lock only guards the cache_ pointer itself against wholesale
//     replacement — and probes/records through the cache's internal
//     lock. ADD_FACTS delta-invalidation and the byte-cap generational
//     eviction, which swap or migrate the cache wholesale, take the
//     session cache lock exclusive. `queries_waited` counts queries
//     that found a writer holding the lock (had to block before
//     starting), no longer queries serialized behind another query;
//   * ADD_FACTS delta-invalidates the cache instead of rebuilding it:
//     only refuted entries (exact tables + subsumption banks) whose
//     predicates fall in the inserted facts' affected cone — forward
//     reachability from the delta in pg(Σ) — are dropped; proven entries
//     and cone-disjoint refutations carry over warm with their soundness
//     intact (ProofSearchCache::InvalidateForDelta). Counted in
//     `cache_invalidations`. A batch that inserts nothing new (or fails)
//     leaves the cache untouched;
//   * ADD_FACTS is all-or-nothing including the symbol table: a failed
//     batch rolls back its interning generation, so repeated failing
//     batches do not grow the table (see SymbolTable::RollbackGeneration);
//   * the cache has a byte cap: when a request leaves it oversized it is
//     generationally evicted (dropped and rebuilt empty), counted in
//     `cache_evictions`. Entries cannot be evicted individually — a
//     SubsumptionIndex never forgets — so wholesale generations keep the
//     accounting simple and the worst case bounded at roughly one warm
//     generation.
//
// SessionRegistry::Handle() is the full command dispatcher mapping
// protocol::Request to a transport-independent protocol::Response (a
// JSON body plus an optional answer table); the socket server renders
// it under the connection's negotiated encoding, the in-process paths
// (HandleLine) render it to the v1 JSON value. One execution path,
// two encodings.

#ifndef VADALOG_SERVER_SESSION_H_
#define VADALOG_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "engine/search_cache.h"
#include "server/protocol.h"
#include "server/worker_pool.h"
#include "vadalog/reasoner.h"

namespace vadalog {

struct SessionOptions {
  /// Generational eviction threshold for the per-session cache.
  size_t cache_byte_limit = 64ull << 20;
  /// Default worker threads per proof search — linear frontier levels
  /// and alternating branch tasks alike; a QUERY's "threads" field
  /// overrides it (the engines cap both at 64).
  uint32_t search_threads = 1;
  /// Pool the parallel searches fork onto (shared with request serving);
  /// may be null (searches then spawn private pools when parallel).
  WorkerPool* pool = nullptr;
};

class Session {
 public:
  /// `program_text` is the LOAD_PROGRAM surface text, kept verbatim so
  /// ANALYZE can lint the *unnormalized* program (the Reasoner holds the
  /// single-head-normalized form, whose invented predicates and dropped
  /// source anchors would make diagnostics useless). Empty for sessions
  /// built programmatically; ANALYZE then reports EUNSUPPORTED.
  Session(std::string name, std::unique_ptr<Reasoner> reasoner,
          std::string program_text, const SessionOptions& options);

  const std::string& name() const { return name_; }

  /// Command implementations; each returns a complete response (ok or
  /// error) correlated to `request.id`. Query carries its answers as a
  /// structured table (rendered per-encoding by the transport).
  JsonValue AddFacts(const protocol::Request& request);
  protocol::Response Query(const protocol::Request& request);
  JsonValue Explain(const protocol::Request& request);

  /// ANALYZE: re-parses the stored program text through the lint driver
  /// (analysis/lint.h) and returns the diagnostics as a JSON array plus
  /// severity counts and the fragment classification. Pure control-plane
  /// response (no answer table), so it renders identically under the v1
  /// JSON and v2 binary encodings.
  JsonValue Analyze(const protocol::Request& request);

  /// One {"name":...,"rules":...,...} stats object; lock-free counters
  /// plus a shared-lock peek at the program sizes.
  JsonValue StatsObject();

  /// LOAD_PROGRAM's response payload (classification, sizes).
  JsonValue DescribeLoaded(const JsonValue& id);

 private:
  /// Resolves the request's query (inline text — parsed under the write
  /// lock — or index into the loaded program). Returns false with
  /// `response` set to the error.
  bool ResolveQuery(const protocol::Request& request, ConjunctiveQuery* query,
                    JsonValue* response);

  ReasonerOptions BuildOptions(const protocol::Request& request) const;

  /// Post-use cache bookkeeping, called with `data_mutex_` held (shared
  /// suffices) and `cache_mutex_` NOT held: reads the byte figure, and
  /// only when it crosses the cap upgrades to the exclusive cache lock,
  /// re-checks (another query may have evicted first), and applies the
  /// generational eviction. Refreshes `cache_bytes_` either way so STATS
  /// tracks growth as it happens, not only at the next eviction.
  void FinishCacheUse();

  const std::string name_;
  /// Original LOAD_PROGRAM text (immutable after construction; ANALYZE
  /// re-parses it without touching the session's live program).
  const std::string program_text_;
  const SessionOptions options_;
  std::unique_ptr<Reasoner> reasoner_;

  /// Guards program + database (see header comment).
  std::shared_mutex data_mutex_;

  /// Guards the cache_ *pointer* (see header comment): queries shared,
  /// wholesale replacement/migration exclusive. Entry-level safety is
  /// the ProofSearchCache's own internal lock.
  std::shared_mutex cache_mutex_;
  std::unique_ptr<ProofSearchCache> cache_;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> queries_waited_{0};  // blocked behind a cache writer
  /// Byte-cap generational evictions (whole cache dropped) — distinct
  /// from `cache_invalidations_`, the ADD_FACTS-driven partial drops.
  std::atomic<uint64_t> cache_evictions_{0};
  std::atomic<uint64_t> cache_invalidations_{0};
  /// Entries removed by delta invalidation (exact + subsumption bank),
  /// cumulative; observability for how partial the invalidations are.
  std::atomic<uint64_t> cache_invalidated_entries_{0};
  std::atomic<uint64_t> facts_added_{0};
  std::atomic<size_t> cache_bytes_{0};  // last observed ApproximateBytes
};

class SessionRegistry {
 public:
  explicit SessionRegistry(const SessionOptions& defaults);

  /// Dispatches one parsed request (any command, HELLO included) to a
  /// transport-independent response. The socket server renders it under
  /// the connection's negotiated encoding.
  protocol::Response Handle(const protocol::Request& request);

  /// Parses one line, dispatches it, and renders the response as the v1
  /// JSON value (answers inlined); protocol errors become error
  /// responses. The entry point for the in-process client mode and the
  /// tests — paths with no connection and hence no negotiated state.
  JsonValue HandleLine(std::string_view line);

  size_t session_count();
  std::shared_ptr<Session> Find(const std::string& name);

 private:
  JsonValue LoadProgram(const protocol::Request& request);
  JsonValue Unload(const protocol::Request& request);
  JsonValue Stats(const protocol::Request& request);

  const SessionOptions defaults_;
  std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace vadalog

#endif  // VADALOG_SERVER_SESSION_H_
