// Named reasoning sessions and the registry behind vadalogd.
//
// A session owns one parsed, classified program (a Reasoner) and one
// long-lived ProofSearchCache, so the cross-query memoization that makes
// repeated proof searches fast survives across requests and across
// clients — the whole point of running a daemon instead of the one-shot
// CLI. Concurrency contract:
//
//   * the lock protocol — which capability guards what, shared vs
//     exclusive per path, and the data-before-cache acquisition order —
//     is machine-checked: see the GUARDED_BY/REQUIRES/ACQUIRED_BEFORE
//     annotations on the members and methods below (and the README
//     "Concurrency invariants" table). `queries_waited` counts queries
//     that found a writer holding the cache lock (had to block before
//     starting), not queries serialized behind another query;
//   * ADD_FACTS delta-invalidates the cache instead of rebuilding it:
//     only refuted entries (exact tables + subsumption banks) whose
//     predicates fall in the inserted facts' affected cone — forward
//     reachability from the delta in pg(Σ) — are dropped; proven entries
//     and cone-disjoint refutations carry over warm with their soundness
//     intact (ProofSearchCache::InvalidateForDelta). Counted in
//     `cache_invalidations`. A batch that inserts nothing new (or fails)
//     leaves the cache untouched;
//   * ADD_FACTS is all-or-nothing including the symbol table: a failed
//     batch rolls back its interning generation, so repeated failing
//     batches do not grow the table (see SymbolTable::RollbackGeneration);
//   * the cache has a byte cap: when a request leaves it oversized it is
//     generationally evicted (dropped and rebuilt empty), counted in
//     `cache_evictions`. Entries cannot be evicted individually — a
//     SubsumptionIndex never forgets — so wholesale generations keep the
//     accounting simple and the worst case bounded at roughly one warm
//     generation.
//
// SessionRegistry::Handle() is the full command dispatcher mapping
// protocol::Request to a transport-independent protocol::Response (a
// JSON body plus an optional answer table); the socket server renders
// it under the connection's negotiated encoding, the in-process paths
// (HandleLine) render it to the v1 JSON value. One execution path,
// two encodings.

#ifndef VADALOG_SERVER_SESSION_H_
#define VADALOG_SERVER_SESSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "engine/search_cache.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/protocol.h"
#include "server/worker_pool.h"
#include "vadalog/reasoner.h"

namespace vadalog {

struct SessionOptions {
  /// Generational eviction threshold for the per-session cache.
  size_t cache_byte_limit = 64ull << 20;
  /// Default worker threads per proof search — linear frontier levels
  /// and alternating branch tasks alike; a QUERY's "threads" field
  /// overrides it (the engines cap both at 64).
  uint32_t search_threads = 1;
  /// Pool the parallel searches fork onto (shared with request serving);
  /// may be null (searches then spawn private pools when parallel).
  WorkerPool* pool = nullptr;
  /// Metrics registry every session registers its counter families in
  /// (the daemon's one registry). May be null; the SessionRegistry then
  /// owns a private one, so handles always exist and the counting paths
  /// stay branch-free.
  obs::MetricsRegistry* metrics = nullptr;
  /// Structured slow-query sink; null or a threshold of 0 disables the
  /// slow-query log entirely.
  obs::SlowQueryLog* slow_log = nullptr;
  /// Slow-query threshold in MICROseconds (ServerConfig's slow_query_ms
  /// times 1000; microseconds here so tests can set 1 and fire
  /// deterministically). 0 = disabled.
  uint64_t slow_query_micros = 0;
};

class Session {
 public:
  /// `program_text` is the LOAD_PROGRAM surface text, kept verbatim so
  /// ANALYZE can lint the *unnormalized* program (the Reasoner holds the
  /// single-head-normalized form, whose invented predicates and dropped
  /// source anchors would make diagnostics useless). Empty for sessions
  /// built programmatically; ANALYZE then reports EUNSUPPORTED.
  Session(std::string name, std::unique_ptr<Reasoner> reasoner,
          std::string program_text, const SessionOptions& options);

  const std::string& name() const { return name_; }

  /// Command implementations; each returns a complete response (ok or
  /// error) correlated to `request.id`. Query carries its answers as a
  /// structured table (rendered per-encoding by the transport).
  JsonValue AddFacts(const protocol::Request& request)
      EXCLUDES(data_mutex_, cache_mutex_);
  protocol::Response Query(const protocol::Request& request)
      EXCLUDES(data_mutex_, cache_mutex_);
  JsonValue Explain(const protocol::Request& request)
      EXCLUDES(data_mutex_, cache_mutex_);

  /// ANALYZE: re-parses the stored program text through the lint driver
  /// (analysis/lint.h) and returns the diagnostics as a JSON array plus
  /// severity counts and the fragment classification. Pure control-plane
  /// response (no answer table), so it renders identically under the v1
  /// JSON and v2 binary encodings.
  JsonValue Analyze(const protocol::Request& request);

  /// One {"name":...,"rules":...,...} stats object; lock-free counters
  /// plus a shared-lock peek at the program sizes.
  JsonValue StatsObject() EXCLUDES(data_mutex_, cache_mutex_);

  /// LOAD_PROGRAM's response payload (classification, sizes).
  JsonValue DescribeLoaded(const JsonValue& id) EXCLUDES(data_mutex_);

 private:
  /// The session's registered instrument handles (vadalog_session_* /
  /// vadalog_search_* families, labeled {"session": name}). Registered
  /// once at construction; handles are registry-owned and stable, so the
  /// serving paths only ever do lock-free Adds. A session re-created
  /// under the same name (LOAD_PROGRAM replace:true) resolves to the
  /// SAME series and keeps counting cumulatively — the Prometheus model,
  /// and what lets an external scraper compare totals across reloads.
  struct Metrics {
    obs::Counter* queries = nullptr;
    obs::Counter* queries_waited = nullptr;
    obs::Counter* cache_evictions = nullptr;
    obs::Counter* cache_invalidations = nullptr;
    obs::Counter* cache_invalidated_entries = nullptr;
    obs::Counter* facts_added = nullptr;
    obs::Counter* slow_queries = nullptr;
    obs::Gauge* cache_bytes = nullptr;
    /// Current generation's proof-cache probe totals (reset by
    /// eviction, hence gauges not counters).
    obs::Gauge* cache_lookups = nullptr;
    obs::Gauge* cache_probe_hits = nullptr;
    obs::Histogram* query_us = nullptr;
    obs::EngineCounters linear;
    obs::EngineCounters alternating;
  };

  /// Resolves the request's query (inline text — parsed under the write
  /// lock — or index into the loaded program). Returns false with
  /// `response` set to the error.
  bool ResolveQuery(const protocol::Request& request, ConjunctiveQuery* query,
                    JsonValue* response) EXCLUDES(data_mutex_);

  ReasonerOptions BuildOptions(const protocol::Request& request) const;

  /// The search + answer-render step of Query, factored out so the
  /// cache-holding and cache-free paths stay branch-uniform for the
  /// thread-safety analysis (a lock held on one arm of a join is a
  /// warning).
  void RunSearch(const ConjunctiveQuery& query, const ReasonerOptions& options,
                 CertainAnswerSet* set, protocol::AnswerTable* table,
                 obs::TraceSpans* spans) REQUIRES_SHARED(data_mutex_);

  /// Appends one JSON record to the slow-query log when the request's
  /// end-to-end time reached the configured threshold. No-op when the
  /// slow log is disabled.
  void MaybeLogSlowQuery(const protocol::Request& request,
                         const obs::TraceSpans& spans);

  /// Post-use cache bookkeeping: reads the byte figure, and only when it
  /// crosses the cap upgrades to the exclusive cache lock, re-checks
  /// (another query may have evicted first), and applies the generational
  /// eviction. Refreshes `cache_bytes_` either way so STATS tracks growth
  /// as it happens, not only at the next eviction.
  void FinishCacheUse() REQUIRES_SHARED(data_mutex_) EXCLUDES(cache_mutex_);

  const std::string name_;
  /// Original LOAD_PROGRAM text (immutable after construction; ANALYZE
  /// re-parses it without touching the session's live program).
  const std::string program_text_;
  const SessionOptions options_;
  /// The pointer itself is set once in the constructor; the capability
  /// guards the Reasoner behind it (program + database): queries take it
  /// shared (the Reasoner's query entry points are const and re-entrant),
  /// ADD_FACTS and inline-query parsing (which interns symbols) take it
  /// exclusive.
  std::unique_ptr<Reasoner> reasoner_ GUARDED_BY(data_mutex_);

  /// Guards program + database (reasoner_). ACQUIRED_BEFORE is the whole
  /// lock-order story: every nested acquisition in this class is data
  /// then cache, so an inversion is a compile error under
  /// -Wthread-safety-beta (it used to be a prose rule in Query).
  base::SharedMutex data_mutex_ ACQUIRED_BEFORE(cache_mutex_);

  /// Guards the cache_ *pointer*: queries shared (pinning it against
  /// wholesale replacement), generational eviction and ADD_FACTS delta
  /// migration exclusive. Entry-level safety is the ProofSearchCache's
  /// own internal lock, so same-session proof-search queries run
  /// concurrently.
  base::SharedMutex cache_mutex_;
  std::unique_ptr<ProofSearchCache> cache_ GUARDED_BY(cache_mutex_);

  /// All per-session counters live in the metrics registry; STATS and
  /// METRICS read the same handles, one source of truth. (The former
  /// per-session atomics — queries_, cache_evictions_, ... — are these
  /// handles now.)
  Metrics metrics_;
};

class SessionRegistry {
 public:
  explicit SessionRegistry(const SessionOptions& defaults);

  /// Dispatches one parsed request (any command, HELLO included) to a
  /// transport-independent response. The socket server renders it under
  /// the connection's negotiated encoding.
  protocol::Response Handle(const protocol::Request& request);

  /// Parses one line, dispatches it, and renders the response as the v1
  /// JSON value (answers inlined); protocol errors become error
  /// responses. The entry point for the in-process client mode and the
  /// tests — paths with no connection and hence no negotiated state.
  JsonValue HandleLine(std::string_view line);

  size_t session_count();
  std::shared_ptr<Session> Find(const std::string& name);

  /// The registry every session and the dispatcher count into: the one
  /// handed in via SessionOptions, or the private fallback this
  /// SessionRegistry owns when none was (in-process tests). Never null.
  obs::MetricsRegistry* metrics() { return metrics_; }

  /// Counts one negotiated response encoding (HELLO outcome). The socket
  /// server calls this for connection HELLOs (which it intercepts before
  /// this dispatcher); in-process HELLOs count in Handle() itself.
  void CountNegotiatedEncoding(protocol::Encoding encoding);

 private:
  JsonValue LoadProgram(const protocol::Request& request);
  JsonValue Unload(const protocol::Request& request);
  JsonValue Stats(const protocol::Request& request);

  SessionOptions defaults_;  // metrics pointer patched to metrics_
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* metrics_ = nullptr;
  base::Mutex mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_
      GUARDED_BY(mutex_);
  const std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  obs::Counter* requests_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Counter* negotiated_json_ = nullptr;
  obs::Counter* negotiated_binary_ = nullptr;
};

/// Renders a registry snapshot as the METRICS payload: one JSON object
/// per metric, sorted by (name, labels) — {"name","type","labels",
/// "help","value"} for counters and gauges, plus {"bounds","buckets"
/// (cumulative, last = +inf = "count"),"sum","count"} for histograms.
/// Identical bytes under both wire encodings (pure control response).
JsonValue RenderMetricsSnapshot(const obs::MetricsRegistry& registry);

/// Renders the span breakdown as the "trace" response object / slow-log
/// "spans" object: {"queue_wait_us",...,"encode_us","total_us"}.
JsonValue RenderTraceSpans(const obs::TraceSpans& spans);

}  // namespace vadalog

#endif  // VADALOG_SERVER_SESSION_H_
