// A minimal JSON value: parse, build, serialize. Enough for the daemon's
// newline-delimited protocol — objects, arrays, strings (with escape and
// \uXXXX handling, surrogate pairs included), numbers (stored as double;
// integers are exact up to 2^53, far beyond any budget or counter the
// protocol carries), booleans, null. No external dependency by design:
// the container bakes in the C++ toolchain only.
//
// Parsing is strict where it matters for a wire protocol (no trailing
// garbage, no unescaped control characters, depth-capped against hostile
// nesting) and the serializer emits valid UTF-8-transparent JSON (bytes
// >= 0x20 pass through; the protocol treats strings as opaque byte
// sequences, matching the reasoner's symbol table).

#ifndef VADALOG_SERVER_JSON_H_
#define VADALOG_SERVER_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vadalog {

class JsonValue {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue Number(uint64_t n) { return Number(static_cast<double>(n)); }
  static JsonValue Number(int n) { return Number(static_cast<double>(n)); }
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed reads; the caller must have checked the type.
  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& Items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& Members() const {
    return members_;
  }

  /// Object lookup (first match); nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Builders.
  void Append(JsonValue v);                       // array
  void Set(std::string key, JsonValue v);         // object (no dedupe)

  /// Convenience typed getters over Find, with defaults.
  std::string GetString(std::string_view key, std::string fallback = "") const;
  /// Numbers are validated to be non-negative integrals representable in
  /// uint64 (budgets, counts); anything else returns the fallback.
  uint64_t GetUint(std::string_view key, uint64_t fallback = 0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  /// Tri-state unsigned read. A double is a valid uint only when it is
  /// finite, non-negative, integral, and at most 9e15 (inside the 2^53
  /// exact-integer range — casting a negative, NaN, infinite, or
  /// out-of-range double to uint64_t is undefined behavior, so the check
  /// comes first). `*out` is written on kValid only. The distinction
  /// kAbsent vs kInvalid lets protocol fields reject a malformed budget
  /// (EBADREQ) instead of silently running with the default.
  enum class UintField : uint8_t { kAbsent, kValid, kInvalid };
  UintField TryGetUint(std::string_view key, uint64_t* out) const;

  /// Serializes on one line (no newline appended, none embedded — the
  /// protocol's framing invariant).
  std::string Dump() const;

  /// Strict parse of exactly one JSON value spanning the whole input.
  /// Returns nullopt and sets `error` (position-annotated) on failure.
  static std::optional<JsonValue> Parse(std::string_view text,
                                        std::string* error);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace vadalog

#endif  // VADALOG_SERVER_JSON_H_
