// ServerConfig: the one coherent knob surface for vadalogd. Every
// runtime parameter of the daemon — listen endpoints, admission caps,
// buffering limits, the wire-encoding allowlist, worker/search threads,
// per-session cache sizing, event-loop backend — lives here as a flat
// field with a stable string key, so the same struct backs
//
//   * `vadalogd --config KEY=VALUE` (repeatable; `--config list` prints
//     the key table),
//   * the deprecated per-knob flags (`--workers=N`, ... — still parsed
//     for one release, with a stderr note pointing at --config), and
//   * in-process construction by tests and benches.
//
// Set() maps a KEY=VALUE pair onto its field with full validation;
// Validate() checks cross-field coherence once parsing is done. Both
// return human-readable errors — the daemon exits with them, it never
// starts on a config it only partially understood.

#ifndef VADALOG_SERVER_CONFIG_H_
#define VADALOG_SERVER_CONFIG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "server/protocol.h"

namespace vadalog {

struct ServerConfig {
  /// Listen on 127.0.0.1:tcp_port when `tcp` is set; port 0 binds an
  /// ephemeral port (read it back from Server::tcp_port() after Start).
  bool tcp = true;
  uint16_t tcp_port = 0;

  /// Additionally listen on this Unix-domain socket path when non-empty.
  /// A stale socket file at the path is unlinked first.
  std::string unix_path;

  /// Worker pool size (request execution + parallel search frontiers).
  /// The daemon's entire thread budget is 1 event loop + this many
  /// workers, independent of the connection count.
  size_t workers = 4;

  /// Default parallel-search threads per query ("threads" overrides).
  uint32_t search_threads = 1;

  /// Generational eviction threshold for each session's proof cache.
  size_t cache_byte_limit = 64ull << 20;

  /// Admission control: caps on in-flight (queued + executing) requests,
  /// global and per session; excess is rejected with EBUSY + retry:true.
  size_t max_inflight = 64;
  size_t max_inflight_per_session = 16;

  /// Cap on simultaneously open client connections; the accept loop
  /// closes new arrivals beyond it. Under descriptor pressure (EMFILE)
  /// the loop additionally evicts its idlest request-free connection.
  size_t max_connections = 4096;

  /// A request line longer than this kills its connection (the framing
  /// cannot be trusted past an overrun).
  size_t max_line_bytes = 8ull << 20;

  /// A connection whose unsent response backlog exceeds this is dropped:
  /// a client that stops reading must not grow the daemon's memory
  /// without bound (its responses are queued, never blocking the loop).
  size_t max_outbuf_bytes = 64ull << 20;

  /// Obsolete under the event loop (kept so old flag surfaces and
  /// configs keep parsing): blocking per-connection reads needed a
  /// receive timeout to bound shutdown drains; the event loop's readers
  /// never block, idle connections cost nothing, and partial requests
  /// survive indefinitely. Accepted and ignored.
  uint32_t recv_timeout_ms = 0;

  /// Response encodings a HELLO may negotiate, in the order offered.
  /// JSON is always usable (it is the pre-negotiation default);
  /// removing "binary" confines every connection to v1-style lines.
  std::vector<protocol::Encoding> encodings = {protocol::Encoding::kJson,
                                               protocol::Encoding::kBinary};

  /// Event-notification backend: "epoll" (Linux; falls back to poll
  /// where unavailable) or "poll" (portable POSIX). One key so the
  /// fallback path stays testable on Linux too.
  std::string poller = "epoll";

  /// Minimum log level for the daemon's stderr lines:
  /// debug | info | warn | error | off (obs/log.h).
  std::string log_level = "info";

  /// Slow-query threshold in milliseconds; a QUERY/EXPLAIN whose
  /// end-to-end serving time reaches it is recorded in the slow-query
  /// log with its full span breakdown. 0 = disabled.
  uint64_t slow_query_ms = 0;

  /// Slow-query log sink: a file path (opened for append), or
  /// "stderr"/"" for stderr. Only consulted when slow_query_ms > 0.
  std::string slow_query_log;

  /// Applies one KEY=VALUE pair (the --config surface). Returns false
  /// with `error` set on an unknown key or an out-of-range value.
  bool Set(std::string_view key, std::string_view value, std::string* error);

  /// Cross-field validation; empty string when coherent.
  std::string Validate() const;

  /// One "key<TAB>current<TAB>help" line per key (--config list).
  static std::string DescribeKeys();
};

}  // namespace vadalog

#endif  // VADALOG_SERVER_CONFIG_H_
