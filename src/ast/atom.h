// Atoms: a predicate applied to a tuple of terms.

#ifndef VADALOG_AST_ATOM_H_
#define VADALOG_AST_ATOM_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/source_loc.h"
#include "base/hash.h"
#include "base/symbol_table.h"
#include "base/term.h"

namespace vadalog {

/// An atom R(t1, ..., tn). Value semantics.
///
/// `loc` is where the atom's predicate token appeared in the source text
/// (unknown for synthetic atoms). It is carried for diagnostics only and
/// is deliberately excluded from equality and hashing: two atoms denote
/// the same fact regardless of where they were written, and the engines
/// dedupe atoms by value everywhere.
struct Atom {
  PredicateId predicate = kInvalidPredicate;
  std::vector<Term> args;
  SourceLoc loc;

  Atom() = default;
  Atom(PredicateId p, std::vector<Term> a, SourceLoc l = {})
      : predicate(p), args(std::move(a)), loc(l) {}

  bool operator==(const Atom& other) const {
    return predicate == other.predicate && args == other.args;
  }
  bool operator!=(const Atom& other) const { return !(*this == other); }

  /// True if every argument is a constant (i.e., the atom is a fact).
  bool IsGround() const {
    for (Term t : args) {
      if (!t.is_constant()) return false;
    }
    return true;
  }

  /// True if no argument is a variable (constants and nulls only).
  bool IsRigid() const {
    for (Term t : args) {
      if (t.is_variable()) return false;
    }
    return true;
  }

  /// Appends this atom's variables to `out` (with duplicates).
  void CollectVariables(std::vector<Term>* out) const {
    for (Term t : args) {
      if (t.is_variable()) out->push_back(t);
    }
  }

  size_t Hash() const {
    size_t seed = static_cast<size_t>(predicate) * 0x9e3779b97f4a7c15ULL;
    for (Term t : args) HashCombine(&seed, std::hash<Term>{}(t));
    return seed;
  }

  std::string ToString(const SymbolTable& symbols) const;
};

struct AtomHash {
  size_t operator()(const Atom& a) const { return a.Hash(); }
};

/// A substitution from variables (and occasionally nulls) to terms.
using Substitution = std::unordered_map<Term, Term>;

/// Applies `subst` to `t`; terms without a mapping are returned unchanged.
inline Term ApplySubstitution(const Substitution& subst, Term t) {
  auto it = subst.find(t);
  return it == subst.end() ? t : it->second;
}

/// Applies `subst` to every argument of `atom`.
Atom ApplySubstitution(const Substitution& subst, const Atom& atom);

/// Applies `subst` to every atom.
std::vector<Atom> ApplySubstitution(const Substitution& subst,
                                    const std::vector<Atom>& atoms);

/// Collects the set of variables occurring in `atoms`.
std::unordered_set<Term> VariablesOf(const std::vector<Atom>& atoms);

std::string AtomsToString(const std::vector<Atom>& atoms,
                          const SymbolTable& symbols);

}  // namespace vadalog

#endif  // VADALOG_AST_ATOM_H_
