// Parser for the Vadalog-style surface syntax used across examples, tests,
// and benchmarks.
//
// Syntax (Prolog-flavored, one clause per statement, '.' terminated):
//
//   % line comment (also '#')
//   t(X, Y) :- e(X, Y).            rule: head :- body
//   t(X, Z) :- e(X, Y), t(Y, Z).   joins via repeated variables
//   r(X, Z) :- p(X).               head-only variables are existential (∃Z)
//   a(X), b(X, Y) :- c(X).         multi-atom heads are allowed
//   e(alpha, "two words").         ground atom with no body = fact
//   ?(X) :- t(alpha, X).           conjunctive query (output vars in ?(...))
//
// Identifiers starting with a lowercase letter or digit (or quoted strings)
// are constants / predicate names; identifiers starting with an uppercase
// letter are variables; '_' is a don't-care variable (each occurrence is a
// fresh variable, as in the Section 5 reduction).

#ifndef VADALOG_AST_PARSER_H_
#define VADALOG_AST_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "ast/program.h"
#include "ast/source_loc.h"

namespace vadalog {

struct ParseResult {
  std::optional<Program> program;
  std::string error;      // empty iff program.has_value()
  SourceLoc error_loc;    // where the parse failed; unknown on success

  bool ok() const { return program.has_value(); }
};

/// Parses a full program text (rules, facts, queries). Every parsed atom,
/// rule, and query carries its source location (ast/source_loc.h), and
/// rules/queries carry their surface variable names.
ParseResult ParseProgram(std::string_view text);

/// Parses rules/facts/queries into an existing program, sharing its symbol
/// table. Returns an empty string on success, else an error message;
/// `error_loc` (optional) receives the failure location.
std::string ParseInto(std::string_view text, Program* program,
                      SourceLoc* error_loc = nullptr);

}  // namespace vadalog

#endif  // VADALOG_AST_PARSER_H_
