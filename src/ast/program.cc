#include "ast/program.h"

#include <algorithm>

namespace vadalog {

std::unordered_set<PredicateId> Program::IntensionalPredicates() const {
  std::unordered_set<PredicateId> idb;
  for (const Tgd& tgd : tgds_) {
    for (const Atom& a : tgd.head) idb.insert(a.predicate);
  }
  return idb;
}

std::unordered_set<PredicateId> Program::SchemaPredicates() const {
  std::unordered_set<PredicateId> all;
  for (const Tgd& tgd : tgds_) {
    for (const Atom& a : tgd.body) all.insert(a.predicate);
    for (const Atom& a : tgd.head) all.insert(a.predicate);
  }
  return all;
}

std::unordered_set<PredicateId> Program::ExtensionalPredicates() const {
  std::unordered_set<PredicateId> idb = IntensionalPredicates();
  std::unordered_set<PredicateId> edb;
  for (PredicateId p : SchemaPredicates()) {
    if (idb.count(p) == 0) edb.insert(p);
  }
  return edb;
}

size_t Program::MaxBodySize() const {
  size_t max_size = 0;
  for (const Tgd& tgd : tgds_) max_size = std::max(max_size, tgd.body.size());
  return max_size;
}

bool Program::HasNegation() const {
  for (const Tgd& tgd : tgds_) {
    if (!tgd.negative_body.empty()) return true;
  }
  return false;
}

std::string Program::ToString() const {
  std::string out;
  for (const Tgd& tgd : tgds_) {
    out.append(tgd.ToString(*symbols_));
    out.push_back('\n');
  }
  for (const Atom& fact : facts_) {
    out.append(fact.ToString(*symbols_));
    out.append(".\n");
  }
  for (const ConjunctiveQuery& q : queries_) {
    out.append(q.ToString(*symbols_));
    out.push_back('\n');
  }
  return out;
}

size_t NormalizeToSingleHead(
    Program* program, std::unordered_set<PredicateId>* aux_predicates) {
  std::vector<Tgd> normalized;
  size_t rewritten = 0;
  for (const Tgd& tgd : program->tgds()) {
    if (tgd.head.size() <= 1) {
      normalized.push_back(tgd);
      continue;
    }
    ++rewritten;
    // Order: frontier variables first, then existentials, deterministically
    // by variable index so the transformation is stable.
    std::unordered_set<Term> frontier = tgd.Frontier();
    std::unordered_set<Term> existential = tgd.ExistentialVariables();
    std::vector<Term> aux_args(frontier.begin(), frontier.end());
    std::sort(aux_args.begin(), aux_args.end());
    std::vector<Term> exist_sorted(existential.begin(), existential.end());
    std::sort(exist_sorted.begin(), exist_sorted.end());
    aux_args.insert(aux_args.end(), exist_sorted.begin(), exist_sorted.end());

    PredicateId aux = program->symbols().MakeFreshPredicate(
        "Aux", static_cast<uint32_t>(aux_args.size()));
    if (aux_predicates != nullptr) aux_predicates->insert(aux);

    Tgd generator;
    generator.body = tgd.body;
    generator.negative_body = tgd.negative_body;
    generator.head.push_back(Atom(aux, aux_args));
    normalized.push_back(std::move(generator));

    for (const Atom& head_atom : tgd.head) {
      Tgd projector;
      projector.body.push_back(Atom(aux, aux_args));
      projector.head.push_back(head_atom);
      normalized.push_back(std::move(projector));
    }
  }
  program->tgds() = std::move(normalized);
  return rewritten;
}

}  // namespace vadalog
