#include "ast/parser.h"

#include <cctype>
#include <unordered_map>

namespace vadalog {
namespace {

enum class TokenKind {
  kIdentifier,   // lowercase-initial or digit-initial or quoted
  kVariable,     // uppercase-initial
  kWildcard,     // _
  kLparen,
  kRparen,
  kComma,
  kImplies,      // :-
  kDot,
  kQuestion,     // ?
  kEnd,
  kError,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token Next() {
    SkipWhitespaceAndComments();
    if (pos_ >= text_.size()) return {TokenKind::kEnd, "", line_};
    char c = text_[pos_];
    if (c == '(') return Single(TokenKind::kLparen);
    if (c == ')') return Single(TokenKind::kRparen);
    if (c == ',') return Single(TokenKind::kComma);
    if (c == '.') return Single(TokenKind::kDot);
    if (c == '?') return Single(TokenKind::kQuestion);
    if (c == ':') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
        pos_ += 2;
        return {TokenKind::kImplies, ":-", line_};
      }
      return {TokenKind::kError, "unexpected ':'", line_};
    }
    if (c == '"') return QuotedString();
    if (c == '_' &&
        (pos_ + 1 >= text_.size() || !IsIdentChar(text_[pos_ + 1]))) {
      ++pos_;
      return {TokenKind::kWildcard, "_", line_};
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      return Word();
    }
    return {TokenKind::kError, std::string("unexpected character '") + c + "'",
            line_};
  }

 private:
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$' || c == '\'';
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token Single(TokenKind kind) {
    Token t{kind, std::string(1, text_[pos_]), line_};
    ++pos_;
    return t;
  }

  Token QuotedString() {
    size_t start = ++pos_;  // skip opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return {TokenKind::kError, "unterminated string literal", line_};
    }
    Token t{TokenKind::kIdentifier,
            std::string(text_.substr(start, pos_ - start)), line_};
    ++pos_;  // skip closing quote
    return t;
  }

  Token Word() {
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    std::string word(text_.substr(start, pos_ - start));
    char first = word[0];
    // '_'-initial multi-char identifiers are variables as in Prolog.
    bool is_var = std::isupper(static_cast<unsigned char>(first)) ||
                  (first == '_' && word.size() > 1);
    return {is_var ? TokenKind::kVariable : TokenKind::kIdentifier, word,
            line_};
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  Parser(std::string_view text, Program* program)
      : lexer_(text), program_(program) {
    Advance();
  }

  // Parses all statements; returns empty string or an error message.
  std::string Run() {
    while (current_.kind != TokenKind::kEnd) {
      std::string err = ParseStatement();
      if (!err.empty()) return err;
    }
    return "";
  }

 private:
  void Advance() { current_ = lexer_.Next(); }

  std::string ErrorAt(const std::string& message) {
    return "line " + std::to_string(current_.line) + ": " + message;
  }

  // statement := query | rule | fact
  std::string ParseStatement() {
    // Fresh variable scope per statement.
    variable_ids_.clear();
    next_variable_ = 0;

    if (current_.kind == TokenKind::kQuestion) {
      return ParseQuery();
    }
    // Parse one or more head atoms.
    std::vector<Atom> head;
    std::string err = ParseAtomList(&head);
    if (!err.empty()) return err;

    if (current_.kind == TokenKind::kDot) {
      Advance();
      // Fact(s): must be ground.
      for (const Atom& a : head) {
        if (!a.IsGround()) {
          return ErrorAt("fact contains variables: not ground");
        }
        program_->AddFact(a);
      }
      return "";
    }
    if (current_.kind != TokenKind::kImplies) {
      return ErrorAt("expected ':-' or '.' after head atoms");
    }
    Advance();
    Tgd tgd;
    tgd.head = std::move(head);
    err = ParseRuleBody(&tgd);
    if (!err.empty()) return err;
    if (current_.kind != TokenKind::kDot) {
      return ErrorAt("expected '.' at end of rule");
    }
    Advance();
    if (tgd.body.empty()) {
      return ErrorAt("rule body must have at least one positive atom");
    }
    if (!tgd.NegationIsSafe()) {
      return ErrorAt(
          "unsafe negation: every variable of a negated atom must occur "
          "in a positive body atom");
    }
    program_->AddTgd(std::move(tgd));
    return "";
  }

  // body := (('not')? atom) (',' ('not')? atom)*
  // 'not' is a negation marker only when followed by a predicate name
  // ("not(...)", i.e. a predicate literally called not, stays positive).
  std::string ParseRuleBody(Tgd* tgd) {
    for (;;) {
      bool negated = false;
      if (current_.kind == TokenKind::kIdentifier && current_.text == "not") {
        Token saved = current_;
        Advance();
        if (current_.kind == TokenKind::kIdentifier) {
          negated = true;
        } else {
          // Rewind is not supported; treat "not(" as the predicate 'not'.
          std::string err = ParseAtomAfterName(saved.text, tgd);
          if (!err.empty()) return err;
          if (current_.kind == TokenKind::kComma) {
            Advance();
            continue;
          }
          return "";
        }
      }
      Atom atom;
      std::string err = ParseAtom(&atom);
      if (!err.empty()) return err;
      if (negated) {
        tgd->negative_body.push_back(std::move(atom));
      } else {
        tgd->body.push_back(std::move(atom));
      }
      if (current_.kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      return "";
    }
  }

  // Completes an atom whose predicate name token was already consumed.
  std::string ParseAtomAfterName(const std::string& name, Tgd* tgd) {
    if (current_.kind != TokenKind::kLparen) {
      return ErrorAt("expected '(' after predicate name '" + name + "'");
    }
    Advance();
    std::vector<Term> args;
    if (current_.kind != TokenKind::kRparen) {
      for (;;) {
        Term t;
        std::string err = ParseTerm(&t);
        if (!err.empty()) return err;
        args.push_back(t);
        if (current_.kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (current_.kind != TokenKind::kRparen) {
      return ErrorAt("expected ')' in atom '" + name + "'");
    }
    Advance();
    PredicateId pred = program_->symbols().InternPredicate(
        name, static_cast<uint32_t>(args.size()));
    if (pred == kInvalidPredicate) {
      return ErrorAt("predicate '" + name + "' used with inconsistent arity");
    }
    tgd->body.push_back(Atom(pred, std::move(args)));
    return "";
  }

  // query := '?' '(' terms? ')' ':-' atoms '.'
  std::string ParseQuery() {
    Advance();  // consume '?'
    ConjunctiveQuery query;
    if (current_.kind != TokenKind::kLparen) {
      return ErrorAt("expected '(' after '?'");
    }
    Advance();
    if (current_.kind != TokenKind::kRparen) {
      for (;;) {
        Term t;
        std::string err = ParseTerm(&t);
        if (!err.empty()) return err;
        query.output.push_back(t);
        if (current_.kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (current_.kind != TokenKind::kRparen) {
      return ErrorAt("expected ')' in query head");
    }
    Advance();
    if (current_.kind != TokenKind::kImplies) {
      return ErrorAt("expected ':-' after query head");
    }
    Advance();
    std::string err = ParseAtomList(&query.atoms);
    if (!err.empty()) return err;
    if (current_.kind != TokenKind::kDot) {
      return ErrorAt("expected '.' at end of query");
    }
    Advance();
    program_->AddQuery(std::move(query));
    return "";
  }

  std::string ParseAtomList(std::vector<Atom>* atoms) {
    for (;;) {
      Atom atom;
      std::string err = ParseAtom(&atom);
      if (!err.empty()) return err;
      atoms->push_back(std::move(atom));
      if (current_.kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      return "";
    }
  }

  // atom := identifier '(' terms? ')'
  std::string ParseAtom(Atom* atom) {
    if (current_.kind != TokenKind::kIdentifier) {
      return ErrorAt("expected predicate name, got '" + current_.text + "'");
    }
    std::string name = current_.text;
    Advance();
    if (current_.kind != TokenKind::kLparen) {
      return ErrorAt("expected '(' after predicate name '" + name + "'");
    }
    Advance();
    std::vector<Term> args;
    if (current_.kind != TokenKind::kRparen) {
      for (;;) {
        Term t;
        std::string err = ParseTerm(&t);
        if (!err.empty()) return err;
        args.push_back(t);
        if (current_.kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (current_.kind != TokenKind::kRparen) {
      return ErrorAt("expected ')' in atom '" + name + "'");
    }
    Advance();
    PredicateId pred = program_->symbols().InternPredicate(
        name, static_cast<uint32_t>(args.size()));
    if (pred == kInvalidPredicate) {
      return ErrorAt("predicate '" + name + "' used with inconsistent arity");
    }
    atom->predicate = pred;
    atom->args = std::move(args);
    return "";
  }

  std::string ParseTerm(Term* out) {
    switch (current_.kind) {
      case TokenKind::kIdentifier:
        *out = program_->symbols().InternConstant(current_.text);
        Advance();
        return "";
      case TokenKind::kVariable: {
        auto [it, inserted] =
            variable_ids_.try_emplace(current_.text, next_variable_);
        if (inserted) ++next_variable_;
        *out = Term::Variable(it->second);
        Advance();
        return "";
      }
      case TokenKind::kWildcard:
        // Every wildcard occurrence is a distinct fresh variable.
        *out = Term::Variable(next_variable_++);
        Advance();
        return "";
      default:
        return ErrorAt("expected term, got '" + current_.text + "'");
    }
  }

  Lexer lexer_;
  Program* program_;
  Token current_{TokenKind::kEnd, "", 0};
  std::unordered_map<std::string, uint64_t> variable_ids_;
  uint64_t next_variable_ = 0;
};

}  // namespace

ParseResult ParseProgram(std::string_view text) {
  ParseResult result;
  Program program;
  std::string err = ParseInto(text, &program);
  if (!err.empty()) {
    result.error = std::move(err);
    return result;
  }
  result.program = std::move(program);
  return result;
}

std::string ParseInto(std::string_view text, Program* program) {
  Parser parser(text, program);
  return parser.Run();
}

}  // namespace vadalog
