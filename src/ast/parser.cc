#include "ast/parser.h"

#include <cctype>
#include <unordered_map>

namespace vadalog {
namespace {

enum class TokenKind {
  kIdentifier,   // lowercase-initial or digit-initial or quoted
  kVariable,     // uppercase-initial
  kWildcard,     // _
  kLparen,
  kRparen,
  kComma,
  kImplies,      // :-
  kDot,
  kQuestion,     // ?
  kEnd,
  kError,
};

struct Token {
  TokenKind kind;
  std::string text;
  SourceLoc loc;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token Next() {
    SkipWhitespaceAndComments();
    if (pos_ >= text_.size()) return {TokenKind::kEnd, "", Here()};
    SourceLoc loc = Here();
    char c = text_[pos_];
    if (c == '(') return Single(TokenKind::kLparen);
    if (c == ')') return Single(TokenKind::kRparen);
    if (c == ',') return Single(TokenKind::kComma);
    if (c == '.') return Single(TokenKind::kDot);
    if (c == '?') return Single(TokenKind::kQuestion);
    if (c == ':') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
        pos_ += 2;
        return {TokenKind::kImplies, ":-", loc};
      }
      return {TokenKind::kError, "unexpected ':'", loc};
    }
    if (c == '"') return QuotedString();
    if (c == '_' &&
        (pos_ + 1 >= text_.size() || !IsIdentChar(text_[pos_ + 1]))) {
      ++pos_;
      return {TokenKind::kWildcard, "_", loc};
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      return Word();
    }
    return {TokenKind::kError, std::string("unexpected character '") + c + "'",
            loc};
  }

 private:
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$' || c == '\'';
  }

  /// 1-based (line, column) of `pos_`.
  SourceLoc Here() const {
    return SourceLoc{line_, static_cast<uint32_t>(pos_ - line_start_ + 1)};
  }

  void NewLine() {
    ++line_;
    ++pos_;
    line_start_ = pos_;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        NewLine();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token Single(TokenKind kind) {
    Token t{kind, std::string(1, text_[pos_]), Here()};
    ++pos_;
    return t;
  }

  Token QuotedString() {
    SourceLoc loc = Here();
    size_t start = ++pos_;  // skip opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') {
        NewLine();
      } else {
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) {
      return {TokenKind::kError, "unterminated string literal", loc};
    }
    Token t{TokenKind::kIdentifier,
            std::string(text_.substr(start, pos_ - start)), loc};
    ++pos_;  // skip closing quote
    return t;
  }

  Token Word() {
    SourceLoc loc = Here();
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    std::string word(text_.substr(start, pos_ - start));
    char first = word[0];
    // '_'-initial multi-char identifiers are variables as in Prolog.
    bool is_var = std::isupper(static_cast<unsigned char>(first)) ||
                  (first == '_' && word.size() > 1);
    return {is_var ? TokenKind::kVariable : TokenKind::kIdentifier, word,
            loc};
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_start_ = 0;
  uint32_t line_ = 1;
};

class Parser {
 public:
  Parser(std::string_view text, Program* program)
      : lexer_(text), program_(program) {
    Advance();
  }

  // Parses all statements; returns empty string or an error message.
  std::string Run() {
    while (current_.kind != TokenKind::kEnd) {
      std::string err = ParseStatement();
      if (!err.empty()) return err;
    }
    return "";
  }

  SourceLoc error_loc() const { return error_loc_; }

 private:
  void Advance() { current_ = lexer_.Next(); }

  std::string ErrorAt(const std::string& message) {
    return ErrorAt(current_.loc, message);
  }

  std::string ErrorAt(SourceLoc loc, const std::string& message) {
    error_loc_ = loc;
    return "line " + std::to_string(loc.line) + ": " + message;
  }

  /// The names of the current statement's variables, indexed by variable
  /// index (wildcards appear as "_"). Shared immutably with every rule
  /// and query of the statement.
  VariableNames TakeVariableNames() {
    return std::make_shared<const std::vector<std::string>>(
        std::move(variable_names_));
  }

  // statement := query | rule | fact
  std::string ParseStatement() {
    // Fresh variable scope per statement.
    variable_ids_.clear();
    variable_names_.clear();
    next_variable_ = 0;

    if (current_.kind == TokenKind::kQuestion) {
      return ParseQuery();
    }
    SourceLoc statement_loc = current_.loc;
    // Parse one or more head atoms.
    std::vector<Atom> head;
    std::string err = ParseAtomList(&head);
    if (!err.empty()) return err;

    if (current_.kind == TokenKind::kDot) {
      Advance();
      // Fact(s): must be ground.
      for (const Atom& a : head) {
        if (!a.IsGround()) {
          return ErrorAt(a.loc, "fact contains variables: not ground");
        }
        program_->AddFact(a);
      }
      return "";
    }
    if (current_.kind != TokenKind::kImplies) {
      return ErrorAt("expected ':-' or '.' after head atoms");
    }
    Advance();
    Tgd tgd;
    tgd.loc = statement_loc;
    tgd.head = std::move(head);
    err = ParseRuleBody(&tgd);
    if (!err.empty()) return err;
    if (current_.kind != TokenKind::kDot) {
      return ErrorAt("expected '.' at end of rule");
    }
    Advance();
    if (tgd.body.empty()) {
      return ErrorAt(statement_loc,
                     "rule body must have at least one positive atom");
    }
    if (!tgd.NegationIsSafe()) {
      return ErrorAt(
          statement_loc,
          "unsafe negation: every variable of a negated atom must occur "
          "in a positive body atom");
    }
    tgd.var_names = TakeVariableNames();
    program_->AddTgd(std::move(tgd));
    return "";
  }

  // body := (('not')? atom) (',' ('not')? atom)*
  // 'not' is a negation marker only when followed by a predicate name
  // ("not(...)", i.e. a predicate literally called not, stays positive).
  std::string ParseRuleBody(Tgd* tgd) {
    for (;;) {
      bool negated = false;
      if (current_.kind == TokenKind::kIdentifier && current_.text == "not") {
        Token saved = current_;
        Advance();
        if (current_.kind == TokenKind::kIdentifier) {
          negated = true;
        } else {
          // Rewind is not supported; treat "not(" as the predicate 'not'.
          std::string err = ParseAtomAfterName(saved, tgd);
          if (!err.empty()) return err;
          if (current_.kind == TokenKind::kComma) {
            Advance();
            continue;
          }
          return "";
        }
      }
      Atom atom;
      std::string err = ParseAtom(&atom);
      if (!err.empty()) return err;
      if (negated) {
        tgd->negative_body.push_back(std::move(atom));
      } else {
        tgd->body.push_back(std::move(atom));
      }
      if (current_.kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      return "";
    }
  }

  // Completes an atom whose predicate name token was already consumed.
  std::string ParseAtomAfterName(const Token& name_token, Tgd* tgd) {
    const std::string& name = name_token.text;
    if (current_.kind != TokenKind::kLparen) {
      return ErrorAt("expected '(' after predicate name '" + name + "'");
    }
    Advance();
    std::vector<Term> args;
    if (current_.kind != TokenKind::kRparen) {
      for (;;) {
        Term t;
        std::string err = ParseTerm(&t);
        if (!err.empty()) return err;
        args.push_back(t);
        if (current_.kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (current_.kind != TokenKind::kRparen) {
      return ErrorAt("expected ')' in atom '" + name + "'");
    }
    Advance();
    PredicateId pred = kInvalidPredicate;
    std::string err = InternCheckedArity(name_token, args.size(), &pred);
    if (!err.empty()) return err;
    tgd->body.push_back(Atom(pred, std::move(args), name_token.loc));
    return "";
  }

  /// Interns `name` with the checked arity. Rejects arities the packed
  /// analysis Position encoding cannot represent (see
  /// analysis/wardedness.h: (predicate << 16) | index silently aliases
  /// positions at index >= 2^16, which would corrupt every affected-
  /// position set downstream) and arity clashes.
  std::string InternCheckedArity(const Token& name_token, size_t arity,
                                 PredicateId* pred) {
    if (arity > kMaxArity) {
      return ErrorAt(name_token.loc,
                     "predicate '" + name_token.text + "' has arity " +
                         std::to_string(arity) + "; the maximum is " +
                         std::to_string(kMaxArity));
    }
    *pred = program_->symbols().InternPredicate(
        name_token.text, static_cast<uint32_t>(arity));
    if (*pred == kInvalidPredicate) {
      return ErrorAt(name_token.loc, "predicate '" + name_token.text +
                                         "' used with inconsistent arity");
    }
    return "";
  }

  // query := '?' '(' terms? ')' ':-' atoms '.'
  std::string ParseQuery() {
    SourceLoc query_loc = current_.loc;
    Advance();  // consume '?'
    ConjunctiveQuery query;
    query.loc = query_loc;
    if (current_.kind != TokenKind::kLparen) {
      return ErrorAt("expected '(' after '?'");
    }
    Advance();
    if (current_.kind != TokenKind::kRparen) {
      for (;;) {
        Term t;
        std::string err = ParseTerm(&t);
        if (!err.empty()) return err;
        query.output.push_back(t);
        if (current_.kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (current_.kind != TokenKind::kRparen) {
      return ErrorAt("expected ')' in query head");
    }
    Advance();
    if (current_.kind != TokenKind::kImplies) {
      return ErrorAt("expected ':-' after query head");
    }
    Advance();
    std::string err = ParseAtomList(&query.atoms);
    if (!err.empty()) return err;
    if (current_.kind != TokenKind::kDot) {
      return ErrorAt("expected '.' at end of query");
    }
    Advance();
    query.var_names = TakeVariableNames();
    program_->AddQuery(std::move(query));
    return "";
  }

  std::string ParseAtomList(std::vector<Atom>* atoms) {
    for (;;) {
      Atom atom;
      std::string err = ParseAtom(&atom);
      if (!err.empty()) return err;
      atoms->push_back(std::move(atom));
      if (current_.kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      return "";
    }
  }

  // atom := identifier '(' terms? ')'
  std::string ParseAtom(Atom* atom) {
    if (current_.kind != TokenKind::kIdentifier) {
      return ErrorAt("expected predicate name, got '" + current_.text + "'");
    }
    Token name_token = current_;
    Advance();
    if (current_.kind != TokenKind::kLparen) {
      return ErrorAt("expected '(' after predicate name '" + name_token.text +
                     "'");
    }
    Advance();
    std::vector<Term> args;
    if (current_.kind != TokenKind::kRparen) {
      for (;;) {
        Term t;
        std::string err = ParseTerm(&t);
        if (!err.empty()) return err;
        args.push_back(t);
        if (current_.kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (current_.kind != TokenKind::kRparen) {
      return ErrorAt("expected ')' in atom '" + name_token.text + "'");
    }
    Advance();
    PredicateId pred = kInvalidPredicate;
    std::string err = InternCheckedArity(name_token, args.size(), &pred);
    if (!err.empty()) return err;
    atom->predicate = pred;
    atom->args = std::move(args);
    atom->loc = name_token.loc;
    return "";
  }

  std::string ParseTerm(Term* out) {
    switch (current_.kind) {
      case TokenKind::kIdentifier:
        *out = program_->symbols().InternConstant(current_.text);
        Advance();
        return "";
      case TokenKind::kVariable: {
        auto [it, inserted] =
            variable_ids_.try_emplace(current_.text, next_variable_);
        if (inserted) {
          ++next_variable_;
          variable_names_.push_back(current_.text);
        }
        *out = Term::Variable(it->second);
        Advance();
        return "";
      }
      case TokenKind::kWildcard:
        // Every wildcard occurrence is a distinct fresh variable.
        variable_names_.push_back("_");
        *out = Term::Variable(next_variable_++);
        Advance();
        return "";
      default:
        return ErrorAt("expected term, got '" + current_.text + "'");
    }
  }

  Lexer lexer_;
  Program* program_;
  Token current_{TokenKind::kEnd, "", SourceLoc{}};
  std::unordered_map<std::string, uint64_t> variable_ids_;
  std::vector<std::string> variable_names_;
  uint64_t next_variable_ = 0;
  SourceLoc error_loc_;
};

}  // namespace

ParseResult ParseProgram(std::string_view text) {
  ParseResult result;
  Program program;
  std::string err = ParseInto(text, &program, &result.error_loc);
  if (!err.empty()) {
    result.error = std::move(err);
    return result;
  }
  result.program = std::move(program);
  return result;
}

std::string ParseInto(std::string_view text, Program* program,
                      SourceLoc* error_loc) {
  Parser parser(text, program);
  std::string err = parser.Run();
  if (error_loc != nullptr) {
    *error_loc = err.empty() ? SourceLoc{} : parser.error_loc();
  }
  return err;
}

}  // namespace vadalog
