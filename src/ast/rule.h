// Tuple-generating dependencies (TGDs) and conjunctive queries (CQs).
//
// A TGD is a sentence  ∀x̄∀ȳ (φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)).  We store body and
// head atom lists; the existential variables are exactly the head variables
// that do not occur in the body, and the frontier is the set of variables
// occurring in both. Variables are Term::Variable with indices local to the
// rule (0..num_variables-1).

#ifndef VADALOG_AST_RULE_H_
#define VADALOG_AST_RULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "ast/atom.h"

namespace vadalog {

/// Surface names of a parsed rule/query's variables, indexed by variable
/// index. Shared immutably (the engines copy rules on hot paths — a
/// shared_ptr copy is a refcount bump, not a string-vector clone). Only
/// meaningful for the parser's original variable numbering: consumers of
/// offset/renamed copies must not index it with shifted indices.
using VariableNames = std::shared_ptr<const std::vector<std::string>>;

/// `names` may be null (synthetic rule); out-of-range or unnamed indices
/// render as the debug name X<i>.
std::string VariableName(const VariableNames& names, Term variable);

/// A tuple-generating dependency. Full TGDs (no existentials, single head
/// atom) are exactly Datalog rules (the class FULL1 of Section 6).
///
/// `negative_body` holds atoms negated with "not" — the paper's "very mild
/// and easy to handle negation" (Section 1.1 (2)). Negation is supported
/// for stratified Datalog evaluation only; the chase and the proof-search
/// engines reject programs that use it. Safety requires every variable of
/// a negative atom to occur in the positive body.
struct Tgd {
  std::vector<Atom> body;
  std::vector<Atom> head;
  std::vector<Atom> negative_body;

  /// Where the rule starts in the source text (its first head token);
  /// unknown for synthetic rules. Diagnostics only.
  SourceLoc loc;

  /// Surface variable names (see VariableNames); null for synthetic
  /// rules. Diagnostics only — never consulted by the engines.
  VariableNames var_names;

  /// Variables occurring in both body and head (x̄ in the paper).
  std::unordered_set<Term> Frontier() const;

  /// Existentially quantified variables: head variables not in the body
  /// (z̄ in the paper, var∃(σ)).
  std::unordered_set<Term> ExistentialVariables() const;

  /// True if the rule has no existential variables.
  bool IsFull() const;

  /// True if the rule is full and has exactly one head atom (FULL1).
  bool IsDatalogRule() const { return IsFull() && head.size() == 1; }

  /// Largest variable index used plus one (for fresh-variable allocation).
  uint64_t VariableCount() const;

  /// Renames every variable index i to i + offset; used to keep rule and
  /// query variables disjoint before unification (the σ^o renaming of
  /// Definition 4.6).
  Tgd WithVariableOffset(uint64_t offset) const;

  /// Safety: every variable of a negative atom occurs in the positive
  /// body.
  bool NegationIsSafe() const;

  std::string ToString(const SymbolTable& symbols) const;
};

/// A conjunctive query  Q(x̄) ← R1(z̄1), ..., Rn(z̄n).  Output terms are
/// usually variables; during proof search they may be constants (the
/// "frozen" output convention of Section 4.3).
struct ConjunctiveQuery {
  std::vector<Term> output;
  std::vector<Atom> atoms;

  /// Where the query's '?' appeared; unknown for synthetic queries.
  SourceLoc loc;

  /// Surface variable names; null for synthetic queries.
  VariableNames var_names;

  bool IsBoolean() const { return output.empty(); }
  uint64_t VariableCount() const;
  std::string ToString(const SymbolTable& symbols) const;
};

}  // namespace vadalog

#endif  // VADALOG_AST_RULE_H_
