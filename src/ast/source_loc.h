// Source locations for parsed program text.
//
// Every AST node built by the parser (atoms, TGDs, queries) carries the
// 1-based line/column of the token that introduced it, so downstream
// analyses (analysis/lint.h) can anchor diagnostics to real program text.
// Programs built programmatically (generators, rewrites) carry the
// default-constructed "unknown" location; consumers must treat line 0 as
// "no location" rather than render it.
//
// Deliberately 8 bytes (two uint32) and stored by value: atoms are copied
// in bulk on the proof-search hot paths, so the location must not add an
// allocation or double the atom's footprint. Byte offsets are *not*
// stored — a renderer that needs the surrounding source line recomputes
// it from (line, column) with one linear scan of the text, which only
// happens on the cold diagnostic-rendering path.

#ifndef VADALOG_AST_SOURCE_LOC_H_
#define VADALOG_AST_SOURCE_LOC_H_

#include <cstdint>
#include <string>

namespace vadalog {

struct SourceLoc {
  uint32_t line = 0;    // 1-based; 0 = unknown/synthetic
  uint32_t column = 0;  // 1-based byte column; 0 = unknown

  constexpr bool valid() const { return line != 0; }

  friend constexpr bool operator==(SourceLoc a, SourceLoc b) {
    return a.line == b.line && a.column == b.column;
  }
  friend constexpr bool operator!=(SourceLoc a, SourceLoc b) {
    return !(a == b);
  }
  /// Document order: by line, then column.
  friend constexpr bool operator<(SourceLoc a, SourceLoc b) {
    return a.line != b.line ? a.line < b.line : a.column < b.column;
  }

  /// "line L, column C", or "unknown location".
  std::string ToString() const {
    if (!valid()) return "unknown location";
    return "line " + std::to_string(line) + ", column " +
           std::to_string(column);
  }
};

}  // namespace vadalog

#endif  // VADALOG_AST_SOURCE_LOC_H_
