// A program is a finite set Σ of TGDs over a shared symbol table, plus the
// facts parsed alongside it (convenience for examples/tests) and optional
// queries. Programs own their SymbolTable.

#ifndef VADALOG_AST_PROGRAM_H_
#define VADALOG_AST_PROGRAM_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "ast/atom.h"
#include "ast/rule.h"

namespace vadalog {

class Program {
 public:
  Program() : symbols_(std::make_unique<SymbolTable>()) {}

  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  SymbolTable& symbols() { return *symbols_; }
  const SymbolTable& symbols() const { return *symbols_; }

  std::vector<Tgd>& tgds() { return tgds_; }
  const std::vector<Tgd>& tgds() const { return tgds_; }

  std::vector<Atom>& facts() { return facts_; }
  const std::vector<Atom>& facts() const { return facts_; }

  std::vector<ConjunctiveQuery>& queries() { return queries_; }
  const std::vector<ConjunctiveQuery>& queries() const { return queries_; }

  void AddTgd(Tgd tgd) { tgds_.push_back(std::move(tgd)); }
  void AddFact(Atom fact) { facts_.push_back(std::move(fact)); }
  void AddQuery(ConjunctiveQuery q) { queries_.push_back(std::move(q)); }

  /// The set of predicates occurring in the head of some TGD (intensional).
  std::unordered_set<PredicateId> IntensionalPredicates() const;

  /// The predicates of sch(Σ) that are not intensional (edb(Σ) in Sec. 6).
  std::unordered_set<PredicateId> ExtensionalPredicates() const;

  /// All predicates occurring in the TGDs (sch(Σ)).
  std::unordered_set<PredicateId> SchemaPredicates() const;

  /// Largest body size over all TGDs (max_σ |body(σ)| in the node-width
  /// polynomials of Section 4.2).
  size_t MaxBodySize() const;

  /// True if any rule uses (stratified) negation.
  bool HasNegation() const;

  /// Renders the rule set in surface syntax.
  std::string ToString() const;

 private:
  std::unique_ptr<SymbolTable> symbols_;
  std::vector<Tgd> tgds_;
  std::vector<Atom> facts_;
  std::vector<ConjunctiveQuery> queries_;
};

/// Rewrites Σ so that every TGD has exactly one head atom, preserving
/// certain answers (the standard transformation of [11]; Section 4.2
/// assumes it w.l.o.g.). For a TGD  φ(x̄,ȳ) → ∃z̄ (α1, ..., αk)  with k > 1,
/// introduces a fresh predicate Aux over front(σ) ∪ z̄ and emits
///   φ(x̄,ȳ) → ∃z̄ Aux(x̄,z̄)    and    Aux(x̄,z̄) → αi   for each i.
/// Auxiliary predicates are recorded so they can be excluded from query
/// schemas. Returns the number of rules rewritten.
size_t NormalizeToSingleHead(Program* program,
                             std::unordered_set<PredicateId>* aux_predicates);

}  // namespace vadalog

#endif  // VADALOG_AST_PROGRAM_H_
