#include "ast/rule.h"

#include <algorithm>

namespace vadalog {

std::string VariableName(const VariableNames& names, Term variable) {
  if (names != nullptr && variable.is_variable() &&
      variable.index() < names->size() &&
      !(*names)[variable.index()].empty()) {
    return (*names)[variable.index()];
  }
  return DebugString(variable);
}

std::unordered_set<Term> Tgd::Frontier() const {
  std::unordered_set<Term> body_vars = VariablesOf(body);
  std::unordered_set<Term> frontier;
  for (const Atom& a : head) {
    for (Term t : a.args) {
      if (t.is_variable() && body_vars.count(t) > 0) frontier.insert(t);
    }
  }
  return frontier;
}

std::unordered_set<Term> Tgd::ExistentialVariables() const {
  std::unordered_set<Term> body_vars = VariablesOf(body);
  std::unordered_set<Term> existential;
  for (const Atom& a : head) {
    for (Term t : a.args) {
      if (t.is_variable() && body_vars.count(t) == 0) existential.insert(t);
    }
  }
  return existential;
}

bool Tgd::IsFull() const { return ExistentialVariables().empty(); }

uint64_t Tgd::VariableCount() const {
  uint64_t max_index = 0;
  bool any = false;
  auto scan = [&](const std::vector<Atom>& atoms) {
    for (const Atom& a : atoms) {
      for (Term t : a.args) {
        if (t.is_variable()) {
          any = true;
          max_index = std::max(max_index, t.index());
        }
      }
    }
  };
  scan(body);
  scan(head);
  scan(negative_body);
  return any ? max_index + 1 : 0;
}

Tgd Tgd::WithVariableOffset(uint64_t offset) const {
  auto shift = [offset](const std::vector<Atom>& atoms) {
    std::vector<Atom> out;
    out.reserve(atoms.size());
    for (const Atom& a : atoms) {
      Atom shifted;
      shifted.predicate = a.predicate;
      shifted.loc = a.loc;
      shifted.args.reserve(a.args.size());
      for (Term t : a.args) {
        shifted.args.push_back(
            t.is_variable() ? Term::Variable(t.index() + offset) : t);
      }
      out.push_back(std::move(shifted));
    }
    return out;
  };
  Tgd result;
  result.body = shift(body);
  result.head = shift(head);
  result.negative_body = shift(negative_body);
  // The renamed copy still denotes the same source rule; its variable
  // names do not (indices shifted), so they are deliberately dropped.
  result.loc = loc;
  return result;
}

bool Tgd::NegationIsSafe() const {
  if (negative_body.empty()) return true;
  std::unordered_set<Term> positive_vars = VariablesOf(body);
  for (const Atom& atom : negative_body) {
    for (Term t : atom.args) {
      if (t.is_variable() && positive_vars.count(t) == 0) return false;
    }
  }
  return true;
}

std::string Tgd::ToString(const SymbolTable& symbols) const {
  std::string out =
      AtomsToString(head, symbols) + " :- " + AtomsToString(body, symbols);
  for (const Atom& atom : negative_body) {
    out += ", not " + atom.ToString(symbols);
  }
  out += ".";
  return out;
}

uint64_t ConjunctiveQuery::VariableCount() const {
  uint64_t max_index = 0;
  bool any = false;
  for (const Atom& a : atoms) {
    for (Term t : a.args) {
      if (t.is_variable()) {
        any = true;
        max_index = std::max(max_index, t.index());
      }
    }
  }
  for (Term t : output) {
    if (t.is_variable()) {
      any = true;
      max_index = std::max(max_index, t.index());
    }
  }
  return any ? max_index + 1 : 0;
}

std::string ConjunctiveQuery::ToString(const SymbolTable& symbols) const {
  std::string out = "?(";
  for (size_t i = 0; i < output.size(); ++i) {
    if (i > 0) out.append(", ");
    out.append(symbols.TermToString(output[i]));
  }
  out.append(") :- ");
  out.append(AtomsToString(atoms, symbols));
  out.push_back('.');
  return out;
}

}  // namespace vadalog
