#include "ast/atom.h"

namespace vadalog {

std::string Atom::ToString(const SymbolTable& symbols) const {
  std::string out = symbols.PredicateName(predicate);
  out.push_back('(');
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out.append(", ");
    out.append(symbols.TermToString(args[i]));
  }
  out.push_back(')');
  return out;
}

Atom ApplySubstitution(const Substitution& subst, const Atom& atom) {
  Atom result;
  result.predicate = atom.predicate;
  result.args.reserve(atom.args.size());
  for (Term t : atom.args) result.args.push_back(ApplySubstitution(subst, t));
  return result;
}

std::vector<Atom> ApplySubstitution(const Substitution& subst,
                                    const std::vector<Atom>& atoms) {
  std::vector<Atom> result;
  result.reserve(atoms.size());
  for (const Atom& a : atoms) result.push_back(ApplySubstitution(subst, a));
  return result;
}

std::unordered_set<Term> VariablesOf(const std::vector<Atom>& atoms) {
  std::unordered_set<Term> vars;
  for (const Atom& a : atoms) {
    for (Term t : a.args) {
      if (t.is_variable()) vars.insert(t);
    }
  }
  return vars;
}

std::string AtomsToString(const std::vector<Atom>& atoms,
                          const SymbolTable& symbols) {
  std::string out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out.append(", ");
    out.append(atoms[i].ToString(symbols));
  }
  return out;
}

}  // namespace vadalog
