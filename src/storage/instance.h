// Instances and databases.
//
// An instance is a set of atoms over constants and labeled nulls; a
// database is the special case with constants only (a finite set of
// facts). Tuples are stored per predicate with a per-position hash index so
// that pattern matching binds the most selective position first.

#ifndef VADALOG_STORAGE_INSTANCE_H_
#define VADALOG_STORAGE_INSTANCE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/atom.h"
#include "base/hash.h"

namespace vadalog {

/// Tuple storage for one predicate.
class Relation {
 public:
  explicit Relation(uint32_t arity) : arity_(arity), indexes_(arity) {}

  uint32_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Term>& TupleAt(size_t row) const { return tuples_[row]; }

  /// Inserts a tuple; returns true if it was new.
  bool Insert(const std::vector<Term>& tuple);

  bool Contains(const std::vector<Term>& tuple) const;

  /// Rows whose `position`-th component equals `value` (empty if none).
  const std::vector<uint32_t>& RowsWith(uint32_t position, Term value) const;

  /// Approximate bytes held by this relation (tuples + indexes), used by
  /// the space-efficiency benchmarks.
  size_t ApproximateBytes() const;

 private:
  struct TupleHash {
    size_t operator()(const std::vector<Term>& t) const {
      return HashRange(t.begin(), t.end());
    }
  };

  uint32_t arity_;
  std::vector<std::vector<Term>> tuples_;
  std::unordered_map<std::vector<Term>, uint32_t, TupleHash> tuple_set_;
  // indexes_[i] maps a term to the rows where it appears at position i.
  std::vector<std::unordered_map<Term, std::vector<uint32_t>>> indexes_;
  std::vector<uint32_t> empty_;
};

/// A set of atoms over constants and nulls. Databases are instances whose
/// atoms are ground.
class Instance {
 public:
  Instance() = default;

  /// Inserts an atom (must be rigid: no variables). Returns true if new.
  bool Insert(const Atom& atom);

  bool Contains(const Atom& atom) const;

  /// Total number of atoms.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The stored relation for a predicate, or nullptr if empty.
  const Relation* RelationFor(PredicateId predicate) const;

  /// Predicates with at least one tuple.
  std::vector<PredicateId> Predicates() const;

  /// All atoms, materialized (test/debug helper; O(size)).
  std::vector<Atom> AllAtoms() const;

  /// Every constant and null occurring in the instance (dom(I)).
  std::unordered_set<Term> ActiveDomain() const;

  size_t ApproximateBytes() const;

  /// Highest null index used plus one (for fresh null allocation on top of
  /// an existing instance).
  uint64_t MaxNullIndex() const { return max_null_index_; }

  /// Removes every tuple of `predicate` (stratum garbage collection for
  /// the Section 7 (3) materialization-boundary optimization).
  void DropRelation(PredicateId predicate);

 private:
  std::unordered_map<PredicateId, Relation> relations_;
  size_t size_ = 0;
  uint64_t max_null_index_ = 0;
};

/// Loads the parsed facts of a program into a database instance.
Instance DatabaseFromFacts(const std::vector<Atom>& facts);

}  // namespace vadalog

#endif  // VADALOG_STORAGE_INSTANCE_H_
