#include "storage/io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace vadalog {

std::string LoadFactsTsv(std::istream& input, Program* program) {
  std::string line;
  int line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields;
    size_t start = 0;
    while (start <= line.size()) {
      size_t tab = line.find('\t', start);
      if (tab == std::string::npos) {
        fields.push_back(line.substr(start));
        break;
      }
      fields.push_back(line.substr(start, tab - start));
      start = tab + 1;
    }
    if (fields.empty() || fields[0].empty()) {
      return "line " + std::to_string(line_number) +
             ": missing predicate name";
    }
    uint32_t arity = static_cast<uint32_t>(fields.size() - 1);
    PredicateId pred = program->symbols().InternPredicate(fields[0], arity);
    if (pred == kInvalidPredicate) {
      return "line " + std::to_string(line_number) + ": predicate '" +
             fields[0] + "' used with inconsistent arity";
    }
    Atom fact;
    fact.predicate = pred;
    for (size_t i = 1; i < fields.size(); ++i) {
      fact.args.push_back(program->symbols().InternConstant(fields[i]));
    }
    program->AddFact(std::move(fact));
  }
  return "";
}

std::string LoadFactsTsvFile(const std::string& path, Program* program) {
  std::ifstream file(path);
  if (!file) return "cannot open " + path;
  return LoadFactsTsv(file, program);
}

void WriteFactsTsv(const Instance& instance, const SymbolTable& symbols,
                   std::ostream& output, bool include_nulls) {
  for (PredicateId pred : instance.Predicates()) {
    const Relation* rel = instance.RelationFor(pred);
    for (size_t row = 0; row < rel->size(); ++row) {
      const std::vector<Term>& tuple = rel->TupleAt(row);
      bool has_null = false;
      for (Term t : tuple) has_null = has_null || t.is_null();
      if (has_null && !include_nulls) continue;
      output << symbols.PredicateName(pred);
      for (Term t : tuple) output << '\t' << symbols.TermToString(t);
      output << '\n';
    }
  }
}

}  // namespace vadalog
