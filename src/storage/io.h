// Loading and saving fact sets in a simple TSV format, one file per use:
//
//   predicate<TAB>arg1<TAB>arg2...
//
// one fact per line, '#' comments, blank lines ignored. Used by the CLI's
// --data flag and by tests that persist generated workloads.

#ifndef VADALOG_STORAGE_IO_H_
#define VADALOG_STORAGE_IO_H_

#include <iosfwd>
#include <string>

#include "ast/program.h"
#include "storage/instance.h"

namespace vadalog {

/// Parses TSV facts from `input` into `program` (interning predicates and
/// constants). Returns an empty string on success, else an error message
/// with a line number. Arities are fixed by first use and enforced.
std::string LoadFactsTsv(std::istream& input, Program* program);

/// Convenience: loads from a file path.
std::string LoadFactsTsvFile(const std::string& path, Program* program);

/// Writes every constant-only atom of `instance` as TSV. Atoms containing
/// labeled nulls are written with the null rendered as `_:nK` when
/// `include_nulls` is set, and skipped otherwise.
void WriteFactsTsv(const Instance& instance, const SymbolTable& symbols,
                   std::ostream& output, bool include_nulls = false);

}  // namespace vadalog

#endif  // VADALOG_STORAGE_IO_H_
