// Homomorphism enumeration: matching conjunctions of atoms (with
// variables) against an instance. This is the workhorse behind chase-step
// applicability, CQ evaluation (Proposition 2.1), and the match-and-drop
// step of the bounded proof search.

#ifndef VADALOG_STORAGE_HOMOMORPHISM_H_
#define VADALOG_STORAGE_HOMOMORPHISM_H_

#include <functional>
#include <vector>

#include "ast/atom.h"
#include "ast/rule.h"
#include "storage/instance.h"

namespace vadalog {

/// Callback invoked once per homomorphism with the full substitution
/// (bindings for every variable of the matched atoms, plus whatever was in
/// the seed). Return false to stop enumeration early.
using HomomorphismCallback = std::function<bool(const Substitution&)>;

/// Enumerates homomorphisms h extending `seed` with h(atoms) ⊆ instance.
/// Terms in the atoms that are constants or nulls must match exactly
/// (homomorphisms are the identity on C; nulls in a *pattern* are treated
/// as rigid names, which is what chase-step applicability needs).
/// Returns true if enumeration ran to completion (callback never returned
/// false).
bool ForEachHomomorphism(const std::vector<Atom>& atoms,
                         const Instance& instance, const Substitution& seed,
                         const HomomorphismCallback& callback);

/// True if at least one homomorphism extending `seed` exists.
bool HasHomomorphism(const std::vector<Atom>& atoms, const Instance& instance,
                     const Substitution& seed = {});

/// Evaluates a CQ over an instance: the set of output tuples h(x̄) over all
/// homomorphisms. When `certain_only` is set, tuples containing nulls are
/// discarded (certain answers contain constants only).
std::vector<std::vector<Term>> EvaluateQuery(const ConjunctiveQuery& query,
                                             const Instance& instance,
                                             bool certain_only = true);

/// Deduplicated + sorted variant for stable comparisons in tests.
std::vector<std::vector<Term>> EvaluateQuerySorted(
    const ConjunctiveQuery& query, const Instance& instance,
    bool certain_only = true);

/// True iff `from` maps homomorphically into `onto` as CQ states: a map h
/// on the variables of `from` (identity on constants and nulls) such that
/// h(a) is an atom of `onto` for every atom a of `from`. The variables of
/// `onto` are frozen — they act as distinct rigid names, never renamed —
/// which is CQ containment of `onto` in `from` (Chandra–Merlin). This is
/// the primitive behind subsumption-based state pruning: when it holds,
/// any proof of `onto` restricts to a proof of `from`, so a refutation of
/// `from` refutes `onto`.
bool HasStateHomomorphism(const std::vector<Atom>& from,
                          const std::vector<Atom>& onto);

}  // namespace vadalog

#endif  // VADALOG_STORAGE_HOMOMORPHISM_H_
