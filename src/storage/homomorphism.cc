#include "storage/homomorphism.h"

#include <algorithm>
#include <set>

namespace vadalog {
namespace {

/// Chooses a join order greedily: the atom with the most bound terms first
/// (ties: smaller relation). Returns indices into `atoms`.
std::vector<size_t> JoinOrder(const std::vector<Atom>& atoms,
                              const Instance& instance,
                              const Substitution& seed) {
  std::vector<size_t> order;
  std::vector<bool> used(atoms.size(), false);
  std::unordered_set<Term> bound_vars;
  for (const auto& [from, to] : seed) {
    if (from.is_variable()) bound_vars.insert(from);
  }
  auto bound_terms = [&](const Atom& atom) {
    size_t bound = 0;
    for (Term t : atom.args) {
      if (t.is_rigid() || bound_vars.count(t) > 0) ++bound;
    }
    return bound;
  };
  for (size_t step = 0; step < atoms.size(); ++step) {
    size_t best = atoms.size();
    size_t best_bound = 0;
    size_t best_size = ~size_t{0};
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      size_t bound = bound_terms(atoms[i]);
      const Relation* rel = instance.RelationFor(atoms[i].predicate);
      size_t size = rel == nullptr ? 0 : rel->size();
      if (best == atoms.size() || bound > best_bound ||
          (bound == best_bound && size < best_size)) {
        best = i;
        best_bound = bound;
        best_size = size;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (Term t : atoms[best].args) {
      if (t.is_variable()) bound_vars.insert(t);
    }
  }
  return order;
}

/// Attempts to extend `subst` so that `atom` maps onto `tuple`; appends the
/// newly bound variables to `newly_bound`. Returns false on mismatch (in
/// which case the caller must roll back `newly_bound`).
bool TryExtend(const Atom& atom, const std::vector<Term>& tuple,
               Substitution* subst, std::vector<Term>* newly_bound) {
  for (size_t i = 0; i < atom.args.size(); ++i) {
    Term pattern = ApplySubstitution(*subst, atom.args[i]);
    if (pattern.is_rigid()) {
      if (pattern != tuple[i]) return false;
    } else {
      subst->emplace(pattern, tuple[i]);
      newly_bound->push_back(pattern);
    }
  }
  return true;
}

bool MatchFrom(const std::vector<Atom>& atoms,
               const std::vector<size_t>& order, size_t depth,
               const Instance& instance, Substitution* subst,
               const HomomorphismCallback& callback) {
  if (depth == order.size()) return callback(*subst);
  const Atom& atom = atoms[order[depth]];
  const Relation* rel = instance.RelationFor(atom.predicate);
  if (rel == nullptr) return true;  // no tuples: zero matches, keep going

  // Pick the most selective bound position to drive the index lookup.
  int best_position = -1;
  size_t best_candidates = ~size_t{0};
  for (size_t i = 0; i < atom.args.size(); ++i) {
    Term t = ApplySubstitution(*subst, atom.args[i]);
    if (!t.is_rigid()) continue;
    size_t n = rel->RowsWith(static_cast<uint32_t>(i), t).size();
    if (n < best_candidates) {
      best_candidates = n;
      best_position = static_cast<int>(i);
    }
  }

  auto try_row = [&](size_t row) {
    std::vector<Term> newly_bound;
    if (TryExtend(atom, rel->TupleAt(row), subst, &newly_bound)) {
      if (!MatchFrom(atoms, order, depth + 1, instance, subst, callback)) {
        for (Term t : newly_bound) subst->erase(t);
        return false;
      }
    }
    for (Term t : newly_bound) subst->erase(t);
    return true;
  };

  if (best_position >= 0) {
    Term key = ApplySubstitution(
        *subst, atom.args[static_cast<size_t>(best_position)]);
    for (uint32_t row :
         rel->RowsWith(static_cast<uint32_t>(best_position), key)) {
      if (!try_row(row)) return false;
    }
  } else {
    for (size_t row = 0; row < rel->size(); ++row) {
      if (!try_row(row)) return false;
    }
  }
  return true;
}

}  // namespace

bool ForEachHomomorphism(const std::vector<Atom>& atoms,
                         const Instance& instance, const Substitution& seed,
                         const HomomorphismCallback& callback) {
  if (atoms.empty()) return callback(seed);
  std::vector<size_t> order = JoinOrder(atoms, instance, seed);
  Substitution subst = seed;
  return MatchFrom(atoms, order, 0, instance, &subst, callback);
}

bool HasHomomorphism(const std::vector<Atom>& atoms, const Instance& instance,
                     const Substitution& seed) {
  bool found = false;
  ForEachHomomorphism(atoms, instance, seed, [&found](const Substitution&) {
    found = true;
    return false;  // stop at the first match
  });
  return found;
}

std::vector<std::vector<Term>> EvaluateQuery(const ConjunctiveQuery& query,
                                             const Instance& instance,
                                             bool certain_only) {
  std::vector<std::vector<Term>> results;
  std::set<std::vector<Term>> seen;
  ForEachHomomorphism(
      query.atoms, instance, {}, [&](const Substitution& h) {
        std::vector<Term> tuple;
        tuple.reserve(query.output.size());
        bool ok = true;
        for (Term t : query.output) {
          Term image = ApplySubstitution(h, t);
          if (certain_only && !image.is_constant()) {
            ok = false;
            break;
          }
          tuple.push_back(image);
        }
        if (ok && seen.insert(tuple).second) results.push_back(tuple);
        return true;
      });
  return results;
}

std::vector<std::vector<Term>> EvaluateQuerySorted(
    const ConjunctiveQuery& query, const Instance& instance,
    bool certain_only) {
  std::vector<std::vector<Term>> results =
      EvaluateQuery(query, instance, certain_only);
  std::sort(results.begin(), results.end());
  return results;
}

namespace {

/// Grow-only scratch for HasStateHomomorphism: the subsumption pruning of
/// the proof searches calls it millions of times on tiny states, so the
/// matcher must not allocate. Variable bindings live in a flat array
/// indexed by variable index (states are canonically renamed, so indices
/// are small and dense); candidate lists are one flat arena.
struct StateHomScratch {
  static constexpr uint64_t kMaxVar = 4096;
  std::vector<Term> binding;        // per from-variable index
  std::vector<char> bound;          // per from-variable index
  std::vector<uint32_t> touched;    // bound indices to reset
  std::vector<const Atom*> arena;   // concatenated candidate lists
  std::vector<std::pair<uint32_t, uint32_t>> span;  // per from-atom [b, e)
  std::vector<size_t> order;
};

bool MatchStateFrom(const std::vector<Atom>& from, StateHomScratch* s,
                    size_t depth) {
  if (depth == s->order.size()) return true;
  const Atom& atom = from[s->order[depth]];
  auto [begin, end] = s->span[s->order[depth]];
  for (uint32_t c = begin; c < end; ++c) {
    const Atom* target = s->arena[c];
    size_t touched_mark = s->touched.size();
    bool ok = true;
    for (size_t i = 0; i < atom.args.size() && ok; ++i) {
      Term arg = atom.args[i];
      Term t = target->args[i];
      if (!arg.is_variable()) {
        ok = arg == t;  // constants and nulls map to themselves
        continue;
      }
      uint32_t v = static_cast<uint32_t>(arg.index());
      if (s->bound[v] != 0) {
        ok = s->binding[v] == t;
      } else {
        s->bound[v] = 1;
        s->binding[v] = t;
        s->touched.push_back(v);
      }
    }
    if (ok && MatchStateFrom(from, s, depth + 1)) return true;
    while (s->touched.size() > touched_mark) {
      s->bound[s->touched.back()] = 0;
      s->touched.pop_back();
    }
  }
  return false;
}

}  // namespace

bool HasStateHomomorphism(const std::vector<Atom>& from,
                          const std::vector<Atom>& onto) {
  if (from.empty()) return true;
  uint64_t max_var = 0;
  for (const Atom& a : from) {
    for (Term t : a.args) {
      if (t.is_variable()) max_var = std::max(max_var, t.index());
    }
  }
  // Proof states are canonically renamed, so this never triggers there;
  // it guards arbitrary callers against unbounded scratch growth.
  if (max_var >= StateHomScratch::kMaxVar) return false;

  static thread_local StateHomScratch scratch;
  StateHomScratch* s = &scratch;
  if (s->binding.size() <= max_var) {
    s->binding.resize(max_var + 1);
    s->bound.resize(max_var + 1, 0);
  }
  s->arena.clear();
  s->span.clear();

  // Per-atom candidate targets (same predicate and arity, rigid positions
  // compatible up front). An atom with no candidate kills the match.
  for (const Atom& a : from) {
    uint32_t begin = static_cast<uint32_t>(s->arena.size());
    for (const Atom& target : onto) {
      if (target.predicate != a.predicate ||
          target.args.size() != a.args.size()) {
        continue;
      }
      bool compatible = true;
      for (size_t k = 0; k < a.args.size() && compatible; ++k) {
        if (!a.args[k].is_variable()) {
          compatible = a.args[k] == target.args[k];
        }
      }
      if (compatible) s->arena.push_back(&target);
    }
    if (s->arena.size() == begin) return false;
    s->span.emplace_back(begin, static_cast<uint32_t>(s->arena.size()));
  }
  // Most-constrained-first: fewer candidates earlier prunes harder.
  s->order.resize(from.size());
  for (size_t i = 0; i < from.size(); ++i) s->order[i] = i;
  std::sort(s->order.begin(), s->order.end(), [s](size_t a, size_t b) {
    return s->span[a].second - s->span[a].first <
           s->span[b].second - s->span[b].first;
  });
  bool found = MatchStateFrom(from, s, 0);
  // A successful match leaves its bindings in place — reset them so the
  // flat arrays are clean for the next call.
  for (uint32_t v : s->touched) s->bound[v] = 0;
  s->touched.clear();
  return found;
}

}  // namespace vadalog

