#include "storage/homomorphism.h"

#include <algorithm>
#include <set>

namespace vadalog {
namespace {

/// Chooses a join order greedily: the atom with the most bound terms first
/// (ties: smaller relation). Returns indices into `atoms`.
std::vector<size_t> JoinOrder(const std::vector<Atom>& atoms,
                              const Instance& instance,
                              const Substitution& seed) {
  std::vector<size_t> order;
  std::vector<bool> used(atoms.size(), false);
  std::unordered_set<Term> bound_vars;
  for (const auto& [from, to] : seed) {
    if (from.is_variable()) bound_vars.insert(from);
  }
  auto bound_terms = [&](const Atom& atom) {
    size_t bound = 0;
    for (Term t : atom.args) {
      if (t.is_rigid() || bound_vars.count(t) > 0) ++bound;
    }
    return bound;
  };
  for (size_t step = 0; step < atoms.size(); ++step) {
    size_t best = atoms.size();
    size_t best_bound = 0;
    size_t best_size = ~size_t{0};
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      size_t bound = bound_terms(atoms[i]);
      const Relation* rel = instance.RelationFor(atoms[i].predicate);
      size_t size = rel == nullptr ? 0 : rel->size();
      if (best == atoms.size() || bound > best_bound ||
          (bound == best_bound && size < best_size)) {
        best = i;
        best_bound = bound;
        best_size = size;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (Term t : atoms[best].args) {
      if (t.is_variable()) bound_vars.insert(t);
    }
  }
  return order;
}

/// Attempts to extend `subst` so that `atom` maps onto `tuple`; appends the
/// newly bound variables to `newly_bound`. Returns false on mismatch (in
/// which case the caller must roll back `newly_bound`).
bool TryExtend(const Atom& atom, const std::vector<Term>& tuple,
               Substitution* subst, std::vector<Term>* newly_bound) {
  for (size_t i = 0; i < atom.args.size(); ++i) {
    Term pattern = ApplySubstitution(*subst, atom.args[i]);
    if (pattern.is_rigid()) {
      if (pattern != tuple[i]) return false;
    } else {
      subst->emplace(pattern, tuple[i]);
      newly_bound->push_back(pattern);
    }
  }
  return true;
}

bool MatchFrom(const std::vector<Atom>& atoms,
               const std::vector<size_t>& order, size_t depth,
               const Instance& instance, Substitution* subst,
               const HomomorphismCallback& callback) {
  if (depth == order.size()) return callback(*subst);
  const Atom& atom = atoms[order[depth]];
  const Relation* rel = instance.RelationFor(atom.predicate);
  if (rel == nullptr) return true;  // no tuples: zero matches, keep going

  // Pick the most selective bound position to drive the index lookup.
  int best_position = -1;
  size_t best_candidates = ~size_t{0};
  for (size_t i = 0; i < atom.args.size(); ++i) {
    Term t = ApplySubstitution(*subst, atom.args[i]);
    if (!t.is_rigid()) continue;
    size_t n = rel->RowsWith(static_cast<uint32_t>(i), t).size();
    if (n < best_candidates) {
      best_candidates = n;
      best_position = static_cast<int>(i);
    }
  }

  auto try_row = [&](size_t row) {
    std::vector<Term> newly_bound;
    if (TryExtend(atom, rel->TupleAt(row), subst, &newly_bound)) {
      if (!MatchFrom(atoms, order, depth + 1, instance, subst, callback)) {
        for (Term t : newly_bound) subst->erase(t);
        return false;
      }
    }
    for (Term t : newly_bound) subst->erase(t);
    return true;
  };

  if (best_position >= 0) {
    Term key = ApplySubstitution(
        *subst, atom.args[static_cast<size_t>(best_position)]);
    for (uint32_t row :
         rel->RowsWith(static_cast<uint32_t>(best_position), key)) {
      if (!try_row(row)) return false;
    }
  } else {
    for (size_t row = 0; row < rel->size(); ++row) {
      if (!try_row(row)) return false;
    }
  }
  return true;
}

}  // namespace

bool ForEachHomomorphism(const std::vector<Atom>& atoms,
                         const Instance& instance, const Substitution& seed,
                         const HomomorphismCallback& callback) {
  if (atoms.empty()) return callback(seed);
  std::vector<size_t> order = JoinOrder(atoms, instance, seed);
  Substitution subst = seed;
  return MatchFrom(atoms, order, 0, instance, &subst, callback);
}

bool HasHomomorphism(const std::vector<Atom>& atoms, const Instance& instance,
                     const Substitution& seed) {
  bool found = false;
  ForEachHomomorphism(atoms, instance, seed, [&found](const Substitution&) {
    found = true;
    return false;  // stop at the first match
  });
  return found;
}

std::vector<std::vector<Term>> EvaluateQuery(const ConjunctiveQuery& query,
                                             const Instance& instance,
                                             bool certain_only) {
  std::vector<std::vector<Term>> results;
  std::set<std::vector<Term>> seen;
  ForEachHomomorphism(
      query.atoms, instance, {}, [&](const Substitution& h) {
        std::vector<Term> tuple;
        tuple.reserve(query.output.size());
        bool ok = true;
        for (Term t : query.output) {
          Term image = ApplySubstitution(h, t);
          if (certain_only && !image.is_constant()) {
            ok = false;
            break;
          }
          tuple.push_back(image);
        }
        if (ok && seen.insert(tuple).second) results.push_back(tuple);
        return true;
      });
  return results;
}

std::vector<std::vector<Term>> EvaluateQuerySorted(
    const ConjunctiveQuery& query, const Instance& instance,
    bool certain_only) {
  std::vector<std::vector<Term>> results =
      EvaluateQuery(query, instance, certain_only);
  std::sort(results.begin(), results.end());
  return results;
}

}  // namespace vadalog

