#include "storage/instance.h"

#include <algorithm>
#include <cassert>

namespace vadalog {

bool Relation::Insert(const std::vector<Term>& tuple) {
  assert(tuple.size() == arity_);
  auto [it, inserted] =
      tuple_set_.try_emplace(tuple, static_cast<uint32_t>(tuples_.size()));
  if (!inserted) return false;
  uint32_t row = it->second;
  tuples_.push_back(tuple);
  for (uint32_t i = 0; i < arity_; ++i) {
    indexes_[i][tuple[i]].push_back(row);
  }
  return true;
}

bool Relation::Contains(const std::vector<Term>& tuple) const {
  return tuple_set_.count(tuple) > 0;
}

const std::vector<uint32_t>& Relation::RowsWith(uint32_t position,
                                                Term value) const {
  assert(position < arity_);
  auto it = indexes_[position].find(value);
  return it == indexes_[position].end() ? empty_ : it->second;
}

size_t Relation::ApproximateBytes() const {
  size_t bytes = tuples_.size() * (arity_ * sizeof(Term) + sizeof(void*));
  // Index entries: one row id per position per tuple plus bucket overhead.
  bytes += tuples_.size() * arity_ * (sizeof(uint32_t) + sizeof(void*));
  return bytes;
}

bool Instance::Insert(const Atom& atom) {
  assert(atom.IsRigid() && "instances hold constants and nulls only");
  auto it = relations_.find(atom.predicate);
  if (it == relations_.end()) {
    it = relations_
             .emplace(atom.predicate,
                      Relation(static_cast<uint32_t>(atom.args.size())))
             .first;
  }
  if (!it->second.Insert(atom.args)) return false;
  ++size_;
  for (Term t : atom.args) {
    if (t.is_null()) {
      max_null_index_ = std::max(max_null_index_, t.index() + 1);
    }
  }
  return true;
}

bool Instance::Contains(const Atom& atom) const {
  auto it = relations_.find(atom.predicate);
  return it != relations_.end() && it->second.Contains(atom.args);
}

const Relation* Instance::RelationFor(PredicateId predicate) const {
  auto it = relations_.find(predicate);
  return it == relations_.end() ? nullptr : &it->second;
}

std::vector<PredicateId> Instance::Predicates() const {
  std::vector<PredicateId> preds;
  preds.reserve(relations_.size());
  for (const auto& [p, rel] : relations_) {
    if (!rel.empty()) preds.push_back(p);
  }
  std::sort(preds.begin(), preds.end());
  return preds;
}

std::vector<Atom> Instance::AllAtoms() const {
  std::vector<Atom> atoms;
  atoms.reserve(size_);
  for (const auto& [p, rel] : relations_) {
    for (size_t row = 0; row < rel.size(); ++row) {
      atoms.push_back(Atom(p, rel.TupleAt(row)));
    }
  }
  return atoms;
}

std::unordered_set<Term> Instance::ActiveDomain() const {
  std::unordered_set<Term> domain;
  for (const auto& [p, rel] : relations_) {
    for (size_t row = 0; row < rel.size(); ++row) {
      for (Term t : rel.TupleAt(row)) domain.insert(t);
    }
  }
  return domain;
}

size_t Instance::ApproximateBytes() const {
  size_t bytes = 0;
  for (const auto& [p, rel] : relations_) bytes += rel.ApproximateBytes();
  return bytes;
}

void Instance::DropRelation(PredicateId predicate) {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) return;
  size_ -= it->second.size();
  relations_.erase(it);
}

Instance DatabaseFromFacts(const std::vector<Atom>& facts) {
  Instance db;
  for (const Atom& fact : facts) db.Insert(fact);
  return db;
}

}  // namespace vadalog
