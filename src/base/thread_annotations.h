// Clang Thread Safety Analysis attribute macros.
//
// These make the lock protocol of the concurrent core (sessions, the
// event loop, the worker pool, the proof cache, the metrics registry)
// machine-checked: a guarded field read without its capability, a
// REQUIRES violation, or a lock-order inversion is a compile error under
// `clang -Wthread-safety -Werror` (the CI thread-safety lane), not a
// heisenbug the TSan lane may or may not catch. Under GCC and MSVC every
// macro expands to nothing, so non-Clang builds are bit-identical.
//
// The vocabulary follows the Clang documentation's canonical header
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html): CAPABILITY
// names a lockable type, GUARDED_BY ties data to the capability that
// protects it, REQUIRES/REQUIRES_SHARED precondition functions on held
// capabilities, ACQUIRE/RELEASE annotate the lock primitives themselves,
// and ACQUIRED_BEFORE declares lock ordering (checked under
// -Wthread-safety-beta). NO_THREAD_SAFETY_ANALYSIS is the escape hatch;
// repo policy (README "Concurrency invariants") allows it only on the
// fork-join revocation handoff in worker_pool.cc, and every use must
// carry a written invariant.

#ifndef VADALOG_BASE_THREAD_ANNOTATIONS_H_
#define VADALOG_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define VADALOG_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define VADALOG_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

#define CAPABILITY(x) VADALOG_THREAD_ANNOTATION_(capability(x))

#define SCOPED_CAPABILITY VADALOG_THREAD_ANNOTATION_(scoped_lockable)

#define GUARDED_BY(x) VADALOG_THREAD_ANNOTATION_(guarded_by(x))

#define PT_GUARDED_BY(x) VADALOG_THREAD_ANNOTATION_(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  VADALOG_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  VADALOG_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  VADALOG_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  VADALOG_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  VADALOG_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  VADALOG_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  VADALOG_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  VADALOG_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  VADALOG_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  VADALOG_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  VADALOG_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) VADALOG_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  VADALOG_THREAD_ANNOTATION_(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  VADALOG_THREAD_ANNOTATION_(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) VADALOG_THREAD_ANNOTATION_(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  VADALOG_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // VADALOG_BASE_THREAD_ANNOTATIONS_H_
