// Term representation for the Vadalog core.
//
// A term is one of three disjoint kinds, mirroring the paper's countably
// infinite sets C (constants), N (labeled nulls), and V (variables):
//
//   * Constant  — interned in a SymbolTable; the identity of a constant is
//                 its interned index.
//   * Null      — a labeled null introduced by a chase step; identified by a
//                 monotonically increasing counter.
//   * Variable  — a rule/query variable; identified by a small index local
//                 to the owning rule or query (or canonicalized state).
//
// Terms are packed into a single 64-bit word (2 kind bits + 62 index bits)
// so that atoms are flat arrays of words and substitutions are cheap maps.

#ifndef VADALOG_BASE_TERM_H_
#define VADALOG_BASE_TERM_H_

#include <cstdint>
#include <functional>
#include <string>

namespace vadalog {

/// The kind of a term: constant from C, labeled null from N, variable from V.
enum class TermKind : uint8_t { kConstant = 0, kNull = 1, kVariable = 2 };

/// A packed term. Value semantics, trivially copyable, 8 bytes.
class Term {
 public:
  /// Default-constructed term is constant #0; avoid relying on this.
  constexpr Term() : bits_(0) {}

  static constexpr Term Constant(uint64_t index) {
    return Term((static_cast<uint64_t>(TermKind::kConstant) << kShift) |
                index);
  }
  static constexpr Term Null(uint64_t index) {
    return Term((static_cast<uint64_t>(TermKind::kNull) << kShift) | index);
  }
  static constexpr Term Variable(uint64_t index) {
    return Term((static_cast<uint64_t>(TermKind::kVariable) << kShift) |
                index);
  }

  constexpr TermKind kind() const {
    return static_cast<TermKind>(bits_ >> kShift);
  }
  constexpr bool is_constant() const { return kind() == TermKind::kConstant; }
  constexpr bool is_null() const { return kind() == TermKind::kNull; }
  constexpr bool is_variable() const { return kind() == TermKind::kVariable; }
  /// A "rigid" term denotes a fixed domain element (constant or null);
  /// rigid terms are never renamed by unification.
  constexpr bool is_rigid() const { return !is_variable(); }

  constexpr uint64_t index() const { return bits_ & kIndexMask; }
  constexpr uint64_t bits() const { return bits_; }

  friend constexpr bool operator==(Term a, Term b) {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(Term a, Term b) {
    return a.bits_ != b.bits_;
  }
  friend constexpr bool operator<(Term a, Term b) { return a.bits_ < b.bits_; }

 private:
  static constexpr int kShift = 62;
  static constexpr uint64_t kIndexMask = (uint64_t{1} << kShift) - 1;

  explicit constexpr Term(uint64_t bits) : bits_(bits) {}

  uint64_t bits_;
};

/// Debug rendering without a symbol table: c<i>, n<i>, or X<i>.
std::string DebugString(Term t);

}  // namespace vadalog

template <>
struct std::hash<vadalog::Term> {
  size_t operator()(vadalog::Term t) const noexcept {
    // splitmix64 finalizer: good avalanche for packed ids.
    uint64_t x = t.bits();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

#endif  // VADALOG_BASE_TERM_H_
