// Annotated lock primitives: std::mutex / std::shared_mutex wrappers
// that carry the Clang Thread Safety attributes the standard types
// can't, plus the scoped lockers and the condition variable that pair
// with them. Every lock-owning type in the concurrent core (Session,
// SessionRegistry, Server, WorkerPool, ProofSearchCache,
// obs::MetricsRegistry, obs::SlowQueryLog) holds these instead of the
// std types, so `clang -Wthread-safety -Werror` checks the whole lock
// protocol at build time (see base/thread_annotations.h and the README
// "Concurrency invariants" table). Off Clang the annotations vanish and
// the wrappers compile down to the std types they hold.

#ifndef VADALOG_BASE_MUTEX_H_
#define VADALOG_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "base/thread_annotations.h"

namespace vadalog {
namespace base {

/// Plain exclusive mutex. The lowercase BasicLockable spelling exists so
/// std::condition_variable_any (via base::CondVar) can suspend on an
/// annotated mutex; annotated code should use the CamelCase names.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// Reader-writer mutex (std::shared_mutex with capability attributes).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex (std::lock_guard with attributes).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() RELEASE() { mu_->UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~WriterLock() RELEASE() { mu_->Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable that suspends on a base::Mutex. Waiters spell the
/// predicate as an explicit while-loop in the locked scope (not a lambda
/// passed to Wait): the analysis treats lambda bodies as separate
/// functions that hold nothing, so a predicate lambda touching guarded
/// state would be a false positive.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// A fake capability modelling "runs on thread X" — zero-sized, zero
/// runtime cost. Single-owner state (the event loop's connection table)
/// is GUARDED_BY a ThreadRole; the owning thread asserts the role at its
/// entry points (AssertHeld), and every helper that touches the state
/// carries REQUIRES(role), so a cross-thread access is a compile error
/// even though no lock exists at runtime. Setup/teardown phases that own
/// the state by construction (loop thread not yet started / already
/// joined) take a ThreadRoleGuard to say so explicitly.
class CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void Acquire() ACQUIRE() {}
  void Release() RELEASE() {}
  void AssertHeld() const ASSERT_CAPABILITY(this) {}
};

/// Scoped claim of a ThreadRole for phases that own it by construction.
class SCOPED_CAPABILITY ThreadRoleGuard {
 public:
  explicit ThreadRoleGuard(ThreadRole* role) ACQUIRE(role) : role_(role) {
    role_->Acquire();
  }
  ~ThreadRoleGuard() RELEASE() { role_->Release(); }
  ThreadRoleGuard(const ThreadRoleGuard&) = delete;
  ThreadRoleGuard& operator=(const ThreadRoleGuard&) = delete;

 private:
  ThreadRole* const role_;
};

}  // namespace base
}  // namespace vadalog

#endif  // VADALOG_BASE_MUTEX_H_
