#include "base/memory_tracker.h"

#include <cstdio>
#include <cstring>

namespace vadalog {
namespace {

uint64_t ReadStatusKb(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t value = 0;
  size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      std::sscanf(line + key_len, " %lu", &value);
      break;
    }
  }
  std::fclose(f);
  return value;
}

}  // namespace

uint64_t CurrentRssKb() { return ReadStatusKb("VmRSS:"); }
uint64_t PeakRssKb() { return ReadStatusKb("VmHWM:"); }

}  // namespace vadalog
