#include "base/term.h"

namespace vadalog {

std::string DebugString(Term t) {
  switch (t.kind()) {
    case TermKind::kConstant:
      return "c" + std::to_string(t.index());
    case TermKind::kNull:
      return "n" + std::to_string(t.index());
    case TermKind::kVariable:
      return "X" + std::to_string(t.index());
  }
  return "?";
}

}  // namespace vadalog
