// Lightweight memory accounting used by the space-efficiency benchmarks
// (experiment E1): the paper's headline result is an NLogSpace data
// complexity bound, so the benches report the *logical working set* of each
// algorithm (bytes of live algorithm state) alongside process peak RSS.

#ifndef VADALOG_BASE_MEMORY_TRACKER_H_
#define VADALOG_BASE_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace vadalog {

/// Tracks a logical byte count with a high-water mark. Engines report the
/// size of their frontier/visited/materialized state through this.
class MemoryTracker {
 public:
  void Add(size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }
  void Remove(size_t bytes) { current_ -= bytes < current_ ? bytes : current_; }
  void Reset() { current_ = peak_ = 0; }

  size_t current_bytes() const { return current_; }
  size_t peak_bytes() const { return peak_; }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
};

/// Reads the current resident set size of this process in kilobytes
/// (VmRSS from /proc/self/status); returns 0 if unavailable.
uint64_t CurrentRssKb();

/// Reads the peak resident set size (VmHWM) in kilobytes; 0 if unavailable.
uint64_t PeakRssKb();

}  // namespace vadalog

#endif  // VADALOG_BASE_MEMORY_TRACKER_H_
