// Hash helpers shared across the codebase.

#ifndef VADALOG_BASE_HASH_H_
#define VADALOG_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace vadalog {

/// Mixes `value` into `seed` (boost-style hash_combine with a 64-bit mixer).
inline void HashCombine(size_t* seed, size_t value) {
  uint64_t x = static_cast<uint64_t>(value) + 0x9e3779b97f4a7c15ULL +
               (static_cast<uint64_t>(*seed) << 6) + (*seed >> 2);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  *seed ^= static_cast<size_t>(x);
}

/// Hashes a contiguous range of hashable items.
template <typename It>
size_t HashRange(It first, It last) {
  size_t seed = 0x51ed2701;
  using T = typename std::iterator_traits<It>::value_type;
  std::hash<T> h;
  for (; first != last; ++first) HashCombine(&seed, h(*first));
  return seed;
}

}  // namespace vadalog

#endif  // VADALOG_BASE_HASH_H_
