// Deterministic pseudo-random number generation for workload generators and
// property tests. We avoid std::mt19937 state-size overhead; xoshiro256**
// is small, fast, and reproducible across platforms.

#ifndef VADALOG_BASE_RNG_H_
#define VADALOG_BASE_RNG_H_

#include <cstdint>

namespace vadalog {

/// xoshiro256** with splitmix64 seeding. Deterministic for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 expansion of the seed.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  /// Bernoulli draw with probability p.
  bool Chance(double p) { return Uniform() < p; }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace vadalog

#endif  // VADALOG_BASE_RNG_H_
