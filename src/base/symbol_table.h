// Interning tables for constants and predicates.
//
// The paper's schema S is a finite set of predicates R/n; constants come
// from the countably infinite set C. Both are interned so that terms and
// atoms are flat integer arrays and comparisons are O(1).

#ifndef VADALOG_BASE_SYMBOL_TABLE_H_
#define VADALOG_BASE_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/term.h"

namespace vadalog {

/// Identifies a predicate within a SymbolTable.
using PredicateId = uint32_t;

inline constexpr PredicateId kInvalidPredicate = ~PredicateId{0};

/// Largest representable predicate arity. The analysis layer packs schema
/// positions R[i] as (predicate << 16) | i (analysis/wardedness.h), so an
/// argument index must fit in 16 bits — an arity past 2^16 would silently
/// alias positions and corrupt every affected-position set. Enforced at
/// intern time: InternPredicate rejects larger arities, so no predicate
/// with an unpackable position can exist anywhere downstream.
inline constexpr uint32_t kMaxArity = 0xffff;

/// Owns the mapping between external names and internal ids for constants
/// and predicates, plus predicate arities. Not thread-safe by design: a
/// reasoning session owns one table.
///
/// Interning is generation-scoped: ids are handed out in arrival order, so
/// a mutator that may fail (ADD_FACTS parsing a whole batch, an inline
/// query) takes a MarkGeneration() snapshot first and, on any failure
/// path, RollbackGeneration() releases exactly the ids the failed
/// generation allocated — the table stays flat under repeated
/// add/rollback cycles instead of leaking one arena per attempt. Rolling
/// back is only sound while nothing outside the failed batch holds the
/// fresh ids (the daemon guarantees that by rolling back under the same
/// exclusive lock the batch interned under, before any query can run).
class SymbolTable {
 public:
  SymbolTable() = default;

  // Movable, not copyable (it is an identity-providing registry).
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;
  SymbolTable(SymbolTable&&) = default;
  SymbolTable& operator=(SymbolTable&&) = default;

  /// Interns a constant, returning its term. Idempotent.
  Term InternConstant(std::string_view name);

  /// Returns the constant's name; the term must be a constant from this
  /// table.
  const std::string& ConstantName(Term t) const;

  /// Number of distinct constants interned so far.
  size_t num_constants() const { return constant_names_.size(); }

  /// Interns a predicate with the given arity. Returns kInvalidPredicate
  /// when the predicate exists with a different arity (arity clash) or
  /// when `arity` exceeds kMaxArity (unpackable analysis positions).
  PredicateId InternPredicate(std::string_view name, uint32_t arity);

  /// Looks up a predicate id without creating it; kInvalidPredicate if
  /// absent.
  PredicateId FindPredicate(std::string_view name) const;

  const std::string& PredicateName(PredicateId id) const {
    return predicates_[id].name;
  }
  uint32_t PredicateArity(PredicateId id) const {
    return predicates_[id].arity;
  }
  size_t num_predicates() const { return predicates_.size(); }

  /// Creates a fresh predicate with a unique name derived from `stem`
  /// (used by single-head normalization and the Lemma 6.4 rewriter).
  PredicateId MakeFreshPredicate(std::string_view stem, uint32_t arity);

  /// A snapshot of the interning high-water marks: everything allocated
  /// after the mark belongs to the current generation.
  struct Generation {
    size_t constants = 0;
    size_t predicates = 0;
  };
  Generation MarkGeneration() const {
    return Generation{constant_names_.size(), predicates_.size()};
  }

  /// Releases every constant and predicate id allocated since `mark`
  /// (ids are sequential, so the generation is exactly the tail). The
  /// caller must guarantee no live structure still references the
  /// released ids — see the class comment.
  void RollbackGeneration(const Generation& mark);

  /// Renders a term using this table's names (nulls as _:nK, variables as
  /// their debug names).
  std::string TermToString(Term t) const;

 private:
  struct PredicateInfo {
    std::string name;
    uint32_t arity;
  };

  std::vector<std::string> constant_names_;
  std::unordered_map<std::string, uint64_t> constant_ids_;
  std::vector<PredicateInfo> predicates_;
  std::unordered_map<std::string, PredicateId> predicate_ids_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace vadalog

#endif  // VADALOG_BASE_SYMBOL_TABLE_H_
