#include "base/symbol_table.h"

#include <cassert>

namespace vadalog {

Term SymbolTable::InternConstant(std::string_view name) {
  auto it = constant_ids_.find(std::string(name));
  if (it != constant_ids_.end()) return Term::Constant(it->second);
  uint64_t id = constant_names_.size();
  constant_names_.emplace_back(name);
  constant_ids_.emplace(constant_names_.back(), id);
  return Term::Constant(id);
}

const std::string& SymbolTable::ConstantName(Term t) const {
  assert(t.is_constant() && t.index() < constant_names_.size());
  return constant_names_[t.index()];
}

PredicateId SymbolTable::InternPredicate(std::string_view name,
                                         uint32_t arity) {
  // The analysis layer cannot represent positions past kMaxArity (see the
  // constant's comment); refusing here keeps every interned predicate
  // packable instead of computing wrong affected-position sets later.
  if (arity > kMaxArity) return kInvalidPredicate;
  auto it = predicate_ids_.find(std::string(name));
  if (it != predicate_ids_.end()) {
    if (predicates_[it->second].arity != arity) return kInvalidPredicate;
    return it->second;
  }
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back(PredicateInfo{std::string(name), arity});
  predicate_ids_.emplace(predicates_.back().name, id);
  return id;
}

PredicateId SymbolTable::FindPredicate(std::string_view name) const {
  auto it = predicate_ids_.find(std::string(name));
  return it == predicate_ids_.end() ? kInvalidPredicate : it->second;
}

PredicateId SymbolTable::MakeFreshPredicate(std::string_view stem,
                                            uint32_t arity) {
  for (;;) {
    std::string candidate =
        std::string(stem) + "$" + std::to_string(fresh_counter_++);
    if (predicate_ids_.find(candidate) == predicate_ids_.end()) {
      return InternPredicate(candidate, arity);
    }
  }
}

void SymbolTable::RollbackGeneration(const Generation& mark) {
  assert(mark.constants <= constant_names_.size());
  assert(mark.predicates <= predicates_.size());
  for (size_t i = mark.constants; i < constant_names_.size(); ++i) {
    constant_ids_.erase(constant_names_[i]);
  }
  constant_names_.resize(mark.constants);
  for (size_t i = mark.predicates; i < predicates_.size(); ++i) {
    predicate_ids_.erase(predicates_[i].name);
  }
  predicates_.resize(mark.predicates);
}

std::string SymbolTable::TermToString(Term t) const {
  switch (t.kind()) {
    case TermKind::kConstant:
      return ConstantName(t);
    case TermKind::kNull:
      return "_:n" + std::to_string(t.index());
    case TermKind::kVariable:
      return "X" + std::to_string(t.index());
  }
  return "?";
}

}  // namespace vadalog
