// Tiling systems and the Section 5 reduction showing that CQ answering
// under piece-wise linear TGDs *without* wardedness is undecidable
// (Theorem 5.1).
//
// A tiling system T = (T, L, R, H, V, a, b) has tiles T, left/right border
// tiles L, R ⊆ T (disjoint), horizontal/vertical constraints H, V ⊆ T²,
// and start/finish tiles a, b. A tiling is an n×m assignment whose first
// and last rows start with a and b respectively, whose leftmost/rightmost
// columns use only L/R tiles, and which respects H and V.
//
// The reduction builds a database D_T encoding T, a *fixed* set Σ of TGDs
// in PWL (independent of T) generating all candidate tilings row by row,
// and the Boolean CQ  Q ← CTiling(x,y), Finish(y).  T has a tiling iff
// () ∈ cert(Q, D_T, Σ).

#ifndef VADALOG_TILING_TILING_H_
#define VADALOG_TILING_TILING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ast/program.h"
#include "ast/rule.h"

namespace vadalog {

struct TilingSystem {
  uint32_t num_tiles = 0;                       // tiles are 0..num_tiles-1
  std::vector<uint32_t> left;                   // L
  std::vector<uint32_t> right;                  // R (disjoint from L)
  std::vector<std::pair<uint32_t, uint32_t>> horizontal;  // H
  std::vector<std::pair<uint32_t, uint32_t>> vertical;    // V
  uint32_t start_tile = 0;                      // a
  uint32_t finish_tile = 0;                     // b

  bool Valid() const;
};

/// The reduction output: database facts, the fixed PWL TGD set, and the
/// Boolean query, all over one program.
struct TilingReduction {
  Program program;          // TGDs + facts (D_T) in one program
  ConjunctiveQuery query;   // Boolean: Q ← CTiling(x, y), Finish(y)
};

/// Builds D_T, Σ, and q per Section 5. Σ is piece-wise linear but not
/// warded; it does not depend on the tiling system (only D_T does).
TilingReduction BuildTilingReduction(const TilingSystem& system);

/// Ground-truth solver: searches for a tiling directly, over grids of
/// width ≤ max_width and height ≤ max_height (the reduction quantifies
/// over unbounded grids; the solver bounds them, which suffices to
/// cross-check solvable instances). Returns true iff a tiling exists
/// within the bounds.
bool SolveTilingDirect(const TilingSystem& system, uint32_t max_width,
                       uint32_t max_height);

/// A small solvable tiling system (2 column tiles, permissive
/// constraints) used by tests and benches.
TilingSystem MakeSolvableSystem();

/// A system with unsatisfiable vertical constraints: no tiling of height
/// > 1 exists and the finish condition is unreachable, so the reduction's
/// chase diverges (it keeps generating longer rows) — the undecidability
/// witness behavior.
TilingSystem MakeUnsolvableSystem();

}  // namespace vadalog

#endif  // VADALOG_TILING_TILING_H_
