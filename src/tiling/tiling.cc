#include "tiling/tiling.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_set>

#include "ast/parser.h"

namespace vadalog {
namespace {

/// The fixed TGD set Σ of Section 5 — piece-wise linear, not warded, and
/// independent of the tiling system. Rows are encoded as Row(p, c, s, e):
/// previous row id, current row id, starting tile, ending tile.
constexpr const char* kTilingRules = R"(
  % All rows that respect the horizontal constraints, built left to right.
  row(Z, Z, X, X) :- tile(X).
  row(X, U, Y, W) :- row(_, X, Y, Z), h(Z, W).

  % Compatible row pairs: r2 can be placed below r1 (vertical constraints),
  % checked column by column following the two rows' derivations.
  comp(X, X2) :- row(X, X, Y, Y), row(X2, X2, Y2, Y2), v(Y, Y2).
  comp(Y, Y2) :- row(X, Y, _, Z), row(X2, Y2, _, Z2), comp(X, X2), v(Z, Z2).

  % Candidate tilings, tracked with the starting tile of the latest row.
  ctiling(X, Y) :- row(_, X, Y, Z), start(Y), right(Z).
  ctiling(Y, Z) :- ctiling(X, _), row(_, Y, Z, W), comp(X, Y), le(Z), right(W).
)";

std::string TileName(uint32_t tile) { return "t" + std::to_string(tile); }

}  // namespace

bool TilingSystem::Valid() const {
  auto in_range = [this](uint32_t t) { return t < num_tiles; };
  for (uint32_t t : left) {
    if (!in_range(t)) return false;
  }
  for (uint32_t t : right) {
    if (!in_range(t)) return false;
    if (std::find(left.begin(), left.end(), t) != left.end()) return false;
  }
  for (auto [x, y] : horizontal) {
    if (!in_range(x) || !in_range(y)) return false;
  }
  for (auto [x, y] : vertical) {
    if (!in_range(x) || !in_range(y)) return false;
  }
  return in_range(start_tile) && in_range(finish_tile) && num_tiles > 0;
}

TilingReduction BuildTilingReduction(const TilingSystem& system) {
  TilingReduction reduction;
  ParseResult parsed = ParseProgram(kTilingRules);
  reduction.program = std::move(*parsed.program);
  Program& program = reduction.program;
  SymbolTable& symbols = program.symbols();

  auto unary = [&](const char* pred, uint32_t tile) {
    PredicateId p = symbols.InternPredicate(pred, 1);
    program.AddFact(Atom(p, {symbols.InternConstant(TileName(tile))}));
  };
  auto binary = [&](const char* pred, uint32_t t1, uint32_t t2) {
    PredicateId p = symbols.InternPredicate(pred, 2);
    program.AddFact(Atom(p, {symbols.InternConstant(TileName(t1)),
                             symbols.InternConstant(TileName(t2))}));
  };

  for (uint32_t t = 0; t < system.num_tiles; ++t) unary("tile", t);
  for (uint32_t t : system.left) unary("le", t);
  for (uint32_t t : system.right) unary("right", t);
  for (auto [x, y] : system.horizontal) binary("h", x, y);
  for (auto [x, y] : system.vertical) binary("v", x, y);
  unary("start", system.start_tile);
  unary("finish", system.finish_tile);

  // Q ← CTiling(x, y), Finish(y).
  PredicateId ctiling = symbols.FindPredicate("ctiling");
  PredicateId finish = symbols.FindPredicate("finish");
  reduction.query.output = {};
  reduction.query.atoms.push_back(
      Atom(ctiling, {Term::Variable(0), Term::Variable(1)}));
  reduction.query.atoms.push_back(Atom(finish, {Term::Variable(1)}));
  return reduction;
}

bool SolveTilingDirect(const TilingSystem& system, uint32_t max_width,
                       uint32_t max_height) {
  if (!system.Valid()) return false;
  std::unordered_set<uint32_t> left(system.left.begin(), system.left.end());
  std::unordered_set<uint32_t> right(system.right.begin(),
                                     system.right.end());
  std::set<std::pair<uint32_t, uint32_t>> h(system.horizontal.begin(),
                                            system.horizontal.end());
  std::set<std::pair<uint32_t, uint32_t>> v(system.vertical.begin(),
                                            system.vertical.end());

  for (uint32_t width = 1; width <= max_width; ++width) {
    // Enumerate all rows of this width respecting H, with endpoints in
    // L × R.
    std::vector<std::vector<uint32_t>> rows;
    std::vector<uint32_t> partial;
    auto extend = [&](auto&& self) -> void {
      if (partial.size() == width) {
        if (right.count(partial.back()) > 0) rows.push_back(partial);
        return;
      }
      for (uint32_t t = 0; t < system.num_tiles; ++t) {
        if (partial.empty()) {
          if (left.count(t) == 0) continue;
        } else if (h.count({partial.back(), t}) == 0) {
          continue;
        }
        partial.push_back(t);
        self(self);
        partial.pop_back();
      }
    };
    extend(extend);

    // BFS over rows: start at rows beginning with the start tile, follow
    // V-compatibility, look for a row beginning with the finish tile.
    auto compatible = [&](const std::vector<uint32_t>& above,
                          const std::vector<uint32_t>& below) {
      for (uint32_t i = 0; i < width; ++i) {
        if (v.count({above[i], below[i]}) == 0) return false;
      }
      return true;
    };
    std::deque<std::pair<size_t, uint32_t>> frontier;  // (row index, height)
    std::unordered_set<size_t> seen;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i][0] == system.start_tile) {
        if (rows[i][0] == system.finish_tile) return true;  // m = 1
        frontier.emplace_back(i, 1);
        seen.insert(i);
      }
    }
    while (!frontier.empty()) {
      auto [index, height] = frontier.front();
      frontier.pop_front();
      if (height >= max_height) continue;
      for (size_t j = 0; j < rows.size(); ++j) {
        if (seen.count(j) > 0) continue;
        if (!compatible(rows[index], rows[j])) continue;
        if (rows[j][0] == system.finish_tile) return true;
        seen.insert(j);
        frontier.emplace_back(j, height + 1);
      }
    }
  }
  return false;
}

TilingSystem MakeSolvableSystem() {
  TilingSystem system;
  system.num_tiles = 3;  // 0 = a (left), 1 = r (right), 2 = b (left)
  system.left = {0, 2};
  system.right = {1};
  system.horizontal = {{0, 1}, {2, 1}};
  system.vertical = {{0, 2}, {1, 1}, {0, 0}};
  system.start_tile = 0;
  system.finish_tile = 2;
  return system;
}

TilingSystem MakeUnsolvableSystem() {
  TilingSystem system;
  system.num_tiles = 3;  // tile 2 is isolated; rows can grow unboundedly
  system.left = {0};
  system.right = {1};
  system.horizontal = {{0, 1}, {1, 0}};
  system.vertical = {};
  system.start_tile = 0;
  system.finish_tile = 2;
  return system;
}

}  // namespace vadalog
