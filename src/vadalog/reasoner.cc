#include "vadalog/reasoner.h"

#include <algorithm>

#include "analysis/fragments.h"
#include "analysis/predicate_graph.h"
#include "ast/parser.h"
#include "datalog/seminaive.h"
#include "storage/homomorphism.h"

namespace vadalog {

std::unique_ptr<Reasoner> Reasoner::FromText(std::string_view text,
                                             std::string* error) {
  ParseResult parsed = ParseProgram(text);
  if (!parsed.ok()) {
    if (error != nullptr) *error = parsed.error;
    return nullptr;
  }
  return std::make_unique<Reasoner>(std::move(*parsed.program));
}

Reasoner::Reasoner(Program program) : program_(std::move(program)) {
  NormalizeToSingleHead(&program_, nullptr);
  database_ = DatabaseFromFacts(program_.facts());
  classification_ = ClassifyProgram(program_);
  wardedness_ = CheckWardedness(program_);
}

std::string Reasoner::AddFactsText(std::string_view text,
                                   std::vector<PredicateId>* delta_predicates) {
  size_t old_tgds = program_.tgds().size();
  size_t old_facts = program_.facts().size();
  size_t old_queries = program_.queries().size();
  // The batch's interning is one symbol-table generation: any failure
  // below releases the fresh ids along with the parsed clauses, so a
  // failed ADD_FACTS leaves no trace — not even in the symbol table.
  // Sound because the rolled-back clauses are the only holders of the
  // fresh ids (no database insert or query runs before the checks pass).
  SymbolTable::Generation generation = program_.symbols().MarkGeneration();
  std::string error = ParseInto(text, &program_);
  auto rollback = [&] {
    program_.tgds().resize(old_tgds);
    program_.facts().resize(old_facts);
    program_.queries().resize(old_queries);
    program_.symbols().RollbackGeneration(generation);
  };
  if (!error.empty()) {
    rollback();
    return error;
  }
  if (program_.tgds().size() != old_tgds ||
      program_.queries().size() != old_queries) {
    rollback();
    return "only ground facts may be added to a loaded program "
           "(found rules or queries)";
  }
  for (size_t i = old_facts; i < program_.facts().size(); ++i) {
    if (!program_.facts()[i].IsGround()) {
      rollback();
      return "facts must be ground (no variables)";
    }
  }
  for (size_t i = old_facts; i < program_.facts().size(); ++i) {
    if (database_.Insert(program_.facts()[i]) && delta_predicates != nullptr) {
      delta_predicates->push_back(program_.facts()[i].predicate);
    }
  }
  if (delta_predicates != nullptr) {
    std::sort(delta_predicates->begin(), delta_predicates->end());
    delta_predicates->erase(
        std::unique(delta_predicates->begin(), delta_predicates->end()),
        delta_predicates->end());
  }
  return "";
}

std::optional<ConjunctiveQuery> Reasoner::ParseQuery(std::string_view text,
                                                     std::string* error) {
  size_t old_tgds = program_.tgds().size();
  size_t old_facts = program_.facts().size();
  size_t old_queries = program_.queries().size();
  SymbolTable::Generation generation = program_.symbols().MarkGeneration();
  std::string parse_error = ParseInto(text, &program_);
  auto rollback = [&] {
    program_.tgds().resize(old_tgds);
    program_.facts().resize(old_facts);
    program_.queries().resize(old_queries);
  };
  if (!parse_error.empty()) {
    rollback();
    // A failed parse releases its interning generation too — nothing
    // holds the fresh ids.
    program_.symbols().RollbackGeneration(generation);
    if (error != nullptr) *error = parse_error;
    return std::nullopt;
  }
  if (program_.queries().size() != old_queries + 1 ||
      program_.tgds().size() != old_tgds ||
      program_.facts().size() != old_facts) {
    rollback();
    program_.symbols().RollbackGeneration(generation);
    if (error != nullptr) {
      *error = "expected exactly one query clause (\"?(X) :- ...\")";
    }
    return std::nullopt;
  }
  ConjunctiveQuery query = std::move(program_.queries().back());
  // The query itself is returned and may hold freshly interned constants,
  // so only the clause vectors are rolled back on success.
  rollback();
  return query;
}

std::string Reasoner::AnalysisReport() const {
  PredicateGraph graph(program_);
  std::string report;
  report += "rules: " + std::to_string(program_.tgds().size()) + "\n";
  report += "facts: " + std::to_string(database_.size()) + "\n";
  report += std::string("warded: ") +
            (classification_.warded ? "yes" : "no") + "\n";
  report += std::string("piece-wise linear: ") +
            (classification_.piecewise_linear
                 ? "yes"
                 : (classification_.pwl_after_linearization
                        ? "after linearization"
                        : "no")) +
            "\n";
  report += std::string("intensionally linear: ") +
            (classification_.intensionally_linear ? "yes" : "no") + "\n";
  report += std::string("datalog (FULL1): ") +
            (classification_.datalog ? "yes" : "no") + "\n";
  report += std::string("linear TGDs: ") +
            (classification_.linear_tgds ? "yes" : "no") + "\n";
  report += std::string("guarded: ") +
            (classification_.guarded ? "yes" : "no") + "\n";
  report += std::string("sticky: ") +
            (classification_.sticky ? "yes" : "no") + "\n";
  if (classification_.uses_negation) {
    report += "uses stratified negation: yes\n";
  }
  report += "max predicate level: " + std::to_string(graph.MaxLevel()) + "\n";
  report += "expected data complexity: ";
  if (classification_.warded && classification_.piecewise_linear) {
    report += "NLogSpace (Theorem 4.2)\n";
  } else if (classification_.warded) {
    report += "PTime (Proposition 3.2)\n";
  } else if (classification_.piecewise_linear) {
    report += "undecidable in general (Theorem 5.1)\n";
  } else {
    report += "undecidable in general\n";
  }
  return report;
}

EngineChoice Reasoner::ResolveEngine(EngineChoice requested) const {
  if (requested != EngineChoice::kAuto) return requested;
  if (classification_.warded && classification_.piecewise_linear) {
    return EngineChoice::kLinearProof;
  }
  if (classification_.warded) return EngineChoice::kAlternatingProof;
  return EngineChoice::kChase;
}

std::vector<std::vector<Term>> Reasoner::Answer(
    const ConjunctiveQuery& query, const ReasonerOptions& options) const {
  return AnswerChecked(query, options).answers;
}

CertainAnswerSet Reasoner::AnswerChecked(
    const ConjunctiveQuery& query, const ReasonerOptions& options) const {
  CertainAnswerSet result;
  if (classification_.uses_negation) {
    // Stratified negation: well-defined for Datalog programs only, via
    // the stratified bottom-up evaluator.
    if (!classification_.datalog) {
      result.error =
          "stratified negation is only supported for Datalog (FULL1) "
          "programs; this program mixes negation with existential or "
          "multi-atom-head rules";
      return result;
    }
    DatalogResult evaluated = EvaluateDatalog(program_, database_);
    result.answers = EvaluateQuerySorted(query, evaluated.instance);
    return result;
  }
  // Enumeration in kAuto mode always materializes via the chase — the
  // proof searches are *decision* procedures; enumerating through them
  // means one exhaustive refutation per non-answer in dom(D)^k (they
  // remain available by explicit selection, and IsCertain uses them).
  EngineChoice engine = options.engine;
  switch (engine) {
    case EngineChoice::kAuto:
    case EngineChoice::kChase:
      result.answers =
          CertainAnswersViaChase(program_, database_, query, options.chase);
      return result;
    case EngineChoice::kLinearProof:
      return CertainAnswersViaSearchChecked(program_, database_, query,
                                            /*use_alternating=*/false,
                                            options.proof);
    case EngineChoice::kAlternatingProof:
      return CertainAnswersViaSearchChecked(program_, database_, query,
                                            /*use_alternating=*/true,
                                            options.proof);
  }
  return result;
}

std::vector<std::vector<Term>> Reasoner::Answer(
    size_t query_index, const ReasonerOptions& options) const {
  if (query_index >= program_.queries().size()) return {};
  return Answer(program_.queries()[query_index], options);
}

std::vector<std::string> Reasoner::AnswerStrings(
    size_t query_index, const ReasonerOptions& options) const {
  std::vector<std::string> rendered;
  for (const std::vector<Term>& tuple : Answer(query_index, options)) {
    rendered.push_back(TupleToString(tuple));
  }
  return rendered;
}

bool Reasoner::IsCertain(const ConjunctiveQuery& query,
                         const std::vector<Term>& answer,
                         const ReasonerOptions& options) const {
  if (classification_.uses_negation) {
    // The chase and the proof searches ignore negative bodies, so for
    // negation programs the only sound decision route is the stratified
    // Datalog evaluator (and none at all outside Datalog).
    if (!classification_.datalog) return false;
    DatalogResult evaluated = EvaluateDatalog(program_, database_);
    std::vector<std::vector<Term>> all =
        EvaluateQuerySorted(query, evaluated.instance);
    return std::binary_search(all.begin(), all.end(), answer);
  }
  EngineChoice engine = ResolveEngine(options.engine);
  switch (engine) {
    case EngineChoice::kChase: {
      std::vector<std::vector<Term>> all =
          CertainAnswersViaChase(program_, database_, query, options.chase);
      return std::binary_search(all.begin(), all.end(), answer);
    }
    case EngineChoice::kLinearProof:
      return IsCertainViaLinearSearch(program_, database_, query, answer,
                                      options.proof);
    case EngineChoice::kAlternatingProof:
      return IsCertainViaAlternatingSearch(program_, database_, query, answer,
                                           options.proof);
    case EngineChoice::kAuto:
      break;  // unreachable
  }
  return false;
}

std::string Reasoner::Explain(const ConjunctiveQuery& query,
                              const std::vector<Term>& answer,
                              const ReasonerOptions& options) const {
  // The linear proof search ignores negative bodies: refusing (no
  // proof) is sound, running it on a negation program is not.
  if (classification_.uses_negation) return "";
  ProofExplanation explanation;
  ProofSearchResult result = LinearProofSearch(
      program_, database_, query, answer, options.proof, &explanation);
  if (!result.accepted) return "";
  return explanation.ToString(program_);
}

std::string Reasoner::TupleToString(const std::vector<Term>& tuple) const {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += program_.symbols().TermToString(tuple[i]);
  }
  out += ")";
  return out;
}

}  // namespace vadalog
