// vadalog::Reasoner — the high-level public API tying the library together:
// parse a program, analyze its fragment memberships, load a database, and
// answer conjunctive queries with the engine matching the program's class.
//
// Quickstart:
//
//   auto reasoner = vadalog::Reasoner::FromText(R"(
//     t(X, Y) :- e(X, Y).
//     t(X, Z) :- e(X, Y), t(Y, Z).
//     e(a, b).  e(b, c).
//     ?(X) :- t(a, X).
//   )");
//   for (const std::string& row : reasoner->AnswerStrings(0)) { ... }

#ifndef VADALOG_VADALOG_REASONER_H_
#define VADALOG_VADALOG_REASONER_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/classify.h"
#include "analysis/wardedness.h"
#include "ast/program.h"
#include "chase/chase.h"
#include "engine/certain.h"
#include "storage/instance.h"

namespace vadalog {

/// Which decision/enumeration engine to use.
enum class EngineChoice : uint8_t {
  kAuto,         // linear search for WARD∩PWL, alternating for WARD, else chase
  kChase,        // materialize chase(D, Σ), evaluate (Proposition 2.1)
  kLinearProof,  // Section 4.3 bounded linear proof search
  kAlternatingProof,  // Section 4.3 alternating search (general WARD)
};

struct ReasonerOptions {
  EngineChoice engine = EngineChoice::kAuto;
  ChaseOptions chase;
  ProofSearchOptions proof;
};

class Reasoner {
 public:
  /// Parses a full program text (rules + facts + optional queries).
  /// Returns nullptr and sets `error` on parse failure.
  static std::unique_ptr<Reasoner> FromText(std::string_view text,
                                            std::string* error = nullptr);

  explicit Reasoner(Program program);

  /// The single-head-normalized program the engines run on.
  const Program& program() const { return program_; }

  /// The database built from the program's parsed facts (extendable).
  const Instance& database() const { return database_; }
  void AddFact(const Atom& fact) { database_.Insert(fact); }

  /// Parses surface-syntax clauses and inserts them as facts (program +
  /// database). Clauses that are not ground facts (rules, queries,
  /// non-ground "facts") are rejected and the whole batch is rolled back
  /// all-or-nothing: program vectors, database, AND the symbol-table
  /// generation the batch interned (fresh constant/predicate ids are
  /// released, so repeated failing batches keep the table flat).
  /// Returns an error message, or "" on success. On success,
  /// `delta_predicates` (when non-null) receives the deduplicated
  /// predicates of the facts actually inserted — facts already present
  /// do not count, so a no-op batch reports an empty delta and warm
  /// caches need not be touched at all. Mutates the reasoner: callers
  /// sharing it across threads must hold their write lock.
  std::string AddFactsText(std::string_view text,
                           std::vector<PredicateId>* delta_predicates =
                               nullptr);

  /// Parses one query clause ("?(X) :- ...") against this reasoner's
  /// symbol table without retaining it in the program. Exactly one query
  /// and nothing else may appear in `text`. Interns new constants, so it
  /// mutates the symbol table: same locking caveat as AddFactsText.
  std::optional<ConjunctiveQuery> ParseQuery(std::string_view text,
                                             std::string* error);

  /// Interns a constant by name (protocol answers arrive as strings).
  /// Mutates the symbol table: same locking caveat as AddFactsText.
  Term InternConstant(std::string_view name) {
    return program_.symbols().InternConstant(name);
  }

  /// Generation-scoped interning support for callers whose interning may
  /// turn out to be speculative (e.g. EXPLAIN answers naming constants
  /// the session has never seen): mark, intern, and — only if nothing
  /// else can hold the fresh ids — roll back. Same locking caveat as
  /// AddFactsText.
  SymbolTable::Generation MarkSymbolGeneration() const {
    return program_.symbols().MarkGeneration();
  }
  void RollbackSymbolGeneration(const SymbolTable::Generation& mark) {
    program_.symbols().RollbackGeneration(mark);
  }

  /// Fragment analysis of the normalized rule set.
  const ProgramClassification& classification() const {
    return classification_;
  }
  const WardednessReport& wardedness() const { return wardedness_; }

  /// Human-readable analysis summary (fragments, levels, width bounds).
  std::string AnalysisReport() const;

  /// Certain answers to a query (sorted, deduplicated tuples of constants).
  /// With proof-search budgets set (options.proof.max_states/max_millis)
  /// the answer set can be silently incomplete — use AnswerChecked to see
  /// whether any search gave up.
  ///
  /// The query entry points below are const and re-entrant: any number of
  /// threads may answer queries against one Reasoner concurrently, as
  /// long as no thread mutates it (AddFact*/ParseQuery/InternConstant) at
  /// the same time — the daemon's sessions guard exactly that split with
  /// a reader-writer lock. A ProofSearchCache passed via options is NOT
  /// covered by this guarantee (single concurrent user; see
  /// engine/search_cache.h).
  std::vector<std::vector<Term>> Answer(
      const ConjunctiveQuery& query,
      const ReasonerOptions& options = {}) const;

  /// Like Answer for the proof-search engines, but keeps the completeness
  /// signal: `complete` is false when a budget-exhausted search rejected a
  /// candidate without refuting it. Chase-based enumeration (kAuto/kChase,
  /// or stratified-negation programs) is always complete. `error` is set
  /// (and the answers empty) when no engine can serve the program at all,
  /// e.g. stratified negation outside Datalog.
  CertainAnswerSet AnswerChecked(const ConjunctiveQuery& query,
                                 const ReasonerOptions& options = {}) const;

  /// Certain answers to the program's `index`-th parsed query.
  std::vector<std::vector<Term>> Answer(
      size_t query_index, const ReasonerOptions& options = {}) const;

  /// Rendered answers, e.g. "(a, b)".
  std::vector<std::string> AnswerStrings(
      size_t query_index, const ReasonerOptions& options = {}) const;

  /// Decides one candidate tuple with the engine chosen by `options`.
  bool IsCertain(const ConjunctiveQuery& query,
                 const std::vector<Term>& answer,
                 const ReasonerOptions& options = {}) const;

  /// Decides a candidate tuple with the linear proof search and, when it
  /// is a certain answer, returns the reconstructed linear proof tree as
  /// a human-readable explanation (Definition 4.6); empty string when the
  /// tuple is not certain.
  std::string Explain(const ConjunctiveQuery& query,
                      const std::vector<Term>& answer,
                      const ReasonerOptions& options = {}) const;

  /// Renders a tuple with this reasoner's symbol table.
  std::string TupleToString(const std::vector<Term>& tuple) const;

 private:
  EngineChoice ResolveEngine(EngineChoice requested) const;

  Program program_;
  Instance database_;
  ProgramClassification classification_;
  WardednessReport wardedness_;
};

}  // namespace vadalog

#endif  // VADALOG_VADALOG_REASONER_H_
